"""REP003 — provenance completeness across config, serializers, identity.

The cross-module contract this rule mechanizes is the one PR 6's
``rng_mode``-in-identity / ``chunk_workers``-excluded split was reviewed
against by hand: a knob that changes computed bits must be recorded
everywhere a result travels (simulation JSON, result-row round-trip) and
consumed when a row is reproduced; a knob that is execution telemetry
must be *declared* as such, not silently dropped.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .framework import Diagnostic, Project, Rule, SourceFile, register


def _dataclass_fields(class_def: ast.ClassDef) -> List[Tuple[str, ast.AST]]:
    """(name, node) of every annotated public field of a dataclass body."""
    fields = []
    for node in class_def.body:
        if (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and not node.target.id.startswith("_")
        ):
            fields.append((node.target.id, node))
    return fields


def _dict_string_keys(node: ast.Dict) -> List[str]:
    return [
        key.value
        for key in node.keys
        if isinstance(key, ast.Constant) and isinstance(key.value, str)
    ]


def _provenance_keys(fn: ast.FunctionDef) -> Optional[Set[str]]:
    """Keys of the ``"provenance"`` dict literal inside a serializer."""
    for node in ast.walk(fn):
        if not isinstance(node, ast.Dict):
            continue
        for key, value in zip(node.keys, node.values):
            if (
                isinstance(key, ast.Constant)
                and key.value == "provenance"
                and isinstance(value, ast.Dict)
            ):
                return set(_dict_string_keys(value))
    return None


def _returned_dict_keys(fn: ast.FunctionDef) -> Optional[Set[str]]:
    """String keys of the dict literal a function returns."""
    for node in ast.walk(fn):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Dict):
            return set(_dict_string_keys(node.value))
    return None


def _constructor_kwargs(fn: ast.FunctionDef, class_name: str) -> Optional[Set[str]]:
    """Keyword names passed to ``class_name(...)`` inside a function."""
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            callee = node.func
            name = (
                callee.id
                if isinstance(callee, ast.Name)
                else callee.attr if isinstance(callee, ast.Attribute) else None
            )
            if name == class_name and node.keywords:
                return {kw.arg for kw in node.keywords if kw.arg is not None}
    return None


def _consumed_names(fn: ast.FunctionDef) -> Set[str]:
    """Names a reproducer visibly consumes from its row argument.

    Attribute reads off the first parameter (``row.seed``) plus every
    string constant in the body — the latter covers the canonical
    ``for name in ("batch_size", ...): getattr(row, name)`` loop.
    """
    row_arg = fn.args.args[0].arg if fn.args.args else None
    consumed: Set[str] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == row_arg
        ):
            consumed.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            consumed.add(node.value)
    return consumed


def _tuple_constant(
    project: Project, name: str
) -> Tuple[Optional[SourceFile], Tuple[str, ...]]:
    found = project.find_constant(name)
    if found is not None and isinstance(found[1], (tuple, list)):
        return found[0], tuple(str(item) for item in found[1])
    return None, ()


def _parameter_names(fn: ast.FunctionDef) -> Set[str]:
    """First-argument names of every ``Parameter("name", ...)`` call."""
    names: Set[str] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "Parameter"
            and node.args
            and isinstance(node.args[0], ast.Constant)
        ):
            names.add(str(node.args[0].value))
    return names


@register
class ProvenanceCompleteness(Rule):
    """Every identity-bearing knob is serialized, round-tripped, consumed.

    Checks, over whatever subset of the definitions the lint tree
    contains (absent pieces are skipped, so fixtures stay small):

    1. every public ``SimulationConfig`` field appears as a key of
       ``simulation_result_to_dict``'s provenance block, unless declared
       in ``NON_PROVENANCE_CONFIG_FIELDS``;
    2. every ``ResultRow`` field appears in ``result_row_to_dict``'s
       returned dict *and* as a keyword of the ``ResultRow(...)``
       reconstruction in ``result_row_from_dict`` (the JSON round-trip);
    3. every ``ResultRow`` field that names an engine knob (a
       ``SimulationConfig`` field or ``SIMULATION_PARAMETER_NAMES``
       entry) is either consumed by ``reproduce_row`` (identity) or
       declared in ``TELEMETRY_ROW_FIELDS`` (telemetry) — never neither,
       and never both;
    4. every ``SIMULATION_PARAMETER_NAMES`` entry appears in the
       provenance block;
    5. ``COMMON_PARAMETER_NAMES`` and ``common_parameter_space()``
       declare exactly the same names.
    """

    rule_id = "REP003"
    title = "provenance-completeness"
    contract = (
        "SimulationConfig fields and common scenario parameters are "
        "serialized, round-tripped, and either reproduction identity or "
        "declared telemetry"
    )

    def check_project(self, project: Project) -> Iterator[Diagnostic]:
        config = project.find_class("SimulationConfig")
        serializer = project.find_function("simulation_result_to_dict")
        _, config_exempt = _tuple_constant(project, "NON_PROVENANCE_CONFIG_FIELDS")
        prov_keys: Optional[Set[str]] = None
        if serializer is not None:
            prov_keys = _provenance_keys(serializer[1])

        # 1. config fields -> provenance block
        if config is not None and prov_keys is not None:
            config_file, config_def = config
            for name, node in _dataclass_fields(config_def):
                if name not in prov_keys and name not in config_exempt:
                    yield self.diagnostic(
                        config_file,
                        node,
                        f"SimulationConfig.{name} is not serialized in "
                        "simulation_result_to_dict provenance and not "
                        "declared in NON_PROVENANCE_CONFIG_FIELDS",
                    )

        # 2. ResultRow round-trip
        row = project.find_class("ResultRow")
        to_dict = project.find_function("result_row_to_dict")
        from_dict = project.find_function("result_row_from_dict")
        row_fields: List[Tuple[str, ast.AST]] = []
        if row is not None:
            row_fields = _dataclass_fields(row[1])
        if row is not None and to_dict is not None:
            out_keys = _returned_dict_keys(to_dict[1]) or set()
            for name, node in row_fields:
                if name not in out_keys:
                    yield self.diagnostic(
                        row[0],
                        node,
                        f"ResultRow.{name} is missing from the "
                        "result_row_to_dict payload: rows would lose this "
                        "provenance on export",
                    )
        if row is not None and from_dict is not None:
            in_kwargs = _constructor_kwargs(from_dict[1], "ResultRow") or set()
            for name, node in row_fields:
                if name not in in_kwargs:
                    yield self.diagnostic(
                        row[0],
                        node,
                        f"ResultRow.{name} is not reconstructed by "
                        "result_row_from_dict: the JSON round-trip drops it",
                    )

        # 3. identity xor telemetry for engine knobs recorded on rows
        _, sim_params = _tuple_constant(project, "SIMULATION_PARAMETER_NAMES")
        _, telemetry_fields = _tuple_constant(project, "TELEMETRY_ROW_FIELDS")
        reproducer = project.find_function("reproduce_row")
        if row is not None and reproducer is not None and config is not None:
            config_names = {name for name, _ in _dataclass_fields(config[1])}
            engine_knobs = config_names | set(sim_params)
            consumed = _consumed_names(reproducer[1])
            for name, node in row_fields:
                if name not in engine_knobs:
                    continue
                is_identity = name in consumed
                is_telemetry = name in telemetry_fields
                if not is_identity and not is_telemetry:
                    yield self.diagnostic(
                        row[0],
                        node,
                        f"ResultRow.{name} is an engine knob that "
                        "reproduce_row never consumes and "
                        "TELEMETRY_ROW_FIELDS does not declare: decide "
                        "whether it is reproduction identity or telemetry",
                    )
                elif is_identity and is_telemetry:
                    yield self.diagnostic(
                        row[0],
                        node,
                        f"ResultRow.{name} is both consumed by "
                        "reproduce_row and declared telemetry in "
                        "TELEMETRY_ROW_FIELDS; it must be exactly one",
                    )

        # 4. engine-consumed common parameters -> provenance block
        sim_params_file, sim_params_names = _tuple_constant(
            project, "SIMULATION_PARAMETER_NAMES"
        )
        if sim_params_file is not None and prov_keys is not None:
            for name in sim_params_names:
                if name not in prov_keys:
                    yield Diagnostic(
                        rule=self.rule_id,
                        path=sim_params_file.rel,
                        line=1,
                        col=0,
                        message=(
                            f"common engine parameter {name!r} "
                            "(SIMULATION_PARAMETER_NAMES) is missing from "
                            "simulation_result_to_dict provenance"
                        ),
                    )

        # 5. COMMON_PARAMETER_NAMES == common_parameter_space()
        common_file, common_names = _tuple_constant(
            project, "COMMON_PARAMETER_NAMES"
        )
        space = project.find_function("common_parameter_space")
        if common_file is not None and space is not None:
            declared = _parameter_names(space[1])
            for name in common_names:
                if name not in declared:
                    yield Diagnostic(
                        rule=self.rule_id,
                        path=common_file.rel,
                        line=1,
                        col=0,
                        message=(
                            f"COMMON_PARAMETER_NAMES entry {name!r} has no "
                            "Parameter in common_parameter_space()"
                        ),
                    )
            for name in sorted(declared - set(common_names)):
                yield Diagnostic(
                    rule=self.rule_id,
                    path=common_file.rel,
                    line=1,
                    col=0,
                    message=(
                        f"common_parameter_space() declares {name!r} but "
                        "COMMON_PARAMETER_NAMES does not list it"
                    ),
                )
