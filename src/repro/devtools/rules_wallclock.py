"""REP002 — wall-clock reads only where registered as telemetry."""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List, Optional, Sequence, Tuple

from .framework import (
    Diagnostic,
    Project,
    Rule,
    SourceFile,
    import_bindings,
    register,
    resolve_call_name,
)

#: Canonical dotted names whose *calls* read the machine clock.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


def _telemetry_prefixes(project: Project) -> Tuple[str, ...]:
    """``TELEMETRY_PREFIXES`` read from the lint tree, else from repro.

    The allow-list is the code: the same tuple ``load_checkpoint`` uses
    to skip telemetry streams decides which modules may read the clock.
    """
    found = project.find_constant("TELEMETRY_PREFIXES")
    if found is not None and isinstance(found[1], (tuple, list)):
        return tuple(str(prefix) for prefix in found[1])
    try:
        from repro.io.shards import TELEMETRY_PREFIXES

        return tuple(TELEMETRY_PREFIXES)
    except Exception:
        return ()


def _telemetry_field_names(project: Project) -> FrozenSet[str]:
    """Field stems of ``WALL_CLOCK_METRICS`` (``perf:elapsed_seconds`` ->
    ``elapsed_seconds``), read from the lint tree else from repro."""
    found = project.find_constant("WALL_CLOCK_METRICS")
    metrics: Sequence[object]
    if found is not None and isinstance(found[1], (tuple, list)):
        metrics = found[1]
    else:
        try:
            from repro.experiments import WALL_CLOCK_METRICS

            metrics = tuple(WALL_CLOCK_METRICS)
        except Exception:
            metrics = ()
    return frozenset(str(metric).rpartition(":")[2] for metric in metrics)


def _is_telemetry_module(
    file: SourceFile, prefixes: Tuple[str, ...]
) -> bool:
    """A module that writes streams named by ``TELEMETRY_PREFIXES``.

    Detected by the presence of a string literal starting with one of
    the registered prefixes (covers plain strings and the constant parts
    of f-strings): a module whose file names are telemetry streams is a
    telemetry writer, and its clock reads land in those streams.
    """
    if not prefixes:
        return False
    for node in ast.walk(file.tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if node.value.startswith(prefixes):
                return True
    return False


def _assigns_telemetry_field(
    scope: ast.AST, field_names: FrozenSet[str]
) -> bool:
    """Whether a scope assigns to a registered wall-clock metric field.

    A function that computes ``result.elapsed_seconds = perf_counter() -
    started`` is a telemetry producer: every clock read in it (including
    the ``started`` anchor) feeds a field bit-identity comparisons are
    pinned to ignore.
    """
    if not field_names:
        return False
    for node in ast.walk(scope):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Attribute) and target.attr in field_names:
                return True
            if isinstance(target, ast.Name) and target.id in field_names:
                return True
    return False


@register
class NoWallClockInIdentity(Rule):
    """The machine clock may feed telemetry, never result identity.

    ``ResultSet.canonical_dict()`` strips exactly the metrics named in
    ``experiments.WALL_CLOCK_METRICS``; checkpoint loading skips exactly
    the streams named in ``io.shards.TELEMETRY_PREFIXES``.  A clock read
    anywhere else can leak wall time into results that are supposed to be
    bit-identical across runs, hosts, and backends — so this rule allows
    ``time.*`` / ``datetime.now`` calls only in modules that write
    registered telemetry streams, in functions that assign to registered
    wall-clock metric fields, or under an explicit ``allow`` annotation.
    Injectable-clock *references* (``clock=time.monotonic`` defaults) are
    deliberately not flagged: parameterizing the clock is the pattern
    this rule pushes call sites toward.
    """

    rule_id = "REP002"
    title = "no-wallclock-in-identity"
    contract = (
        "time.time/perf_counter/monotonic/datetime.now calls only in "
        "registered telemetry modules or wall-clock-metric producers"
    )

    def check_file(
        self, file: SourceFile, project: Project
    ) -> Iterator[Diagnostic]:
        bindings = import_bindings(file.tree)
        clock_calls = [
            (node, resolve_call_name(node.func, bindings))
            for node in ast.walk(file.tree)
            if isinstance(node, ast.Call)
        ]
        clock_calls = [
            (node, name)
            for node, name in clock_calls
            if name in WALL_CLOCK_CALLS
        ]
        if not clock_calls:
            return
        prefixes = _telemetry_prefixes(project)
        if _is_telemetry_module(file, prefixes):
            return
        field_names = _telemetry_field_names(project)
        allowed_spans = [
            (node.lineno, max(getattr(node, "end_lineno", node.lineno) or node.lineno, node.lineno))
            for node in ast.walk(file.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and _assigns_telemetry_field(node, field_names)
        ]
        for node, name in clock_calls:
            if any(low <= node.lineno <= high for low, high in allowed_spans):
                continue
            yield self.diagnostic(
                file,
                node,
                f"{name} read outside registered telemetry: the module "
                "writes no TELEMETRY_PREFIXES stream and the enclosing "
                "function assigns no WALL_CLOCK_METRICS field; inject a "
                "clock, register the field, or annotate the exemption",
            )
