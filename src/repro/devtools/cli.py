"""Command-line front end: ``python -m repro.devtools lint [paths]``.

Exit codes: 0 clean, 1 violations found, 2 usage/parse error — so CI can
gate on the process status while ``--format json`` keeps the log
machine-readable (the same greppable-one-line convention as
``benchmarks/bench_floor_check.py``'s ``FLOOR_OK`` summary).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .framework import format_json, format_text, registered_rules, run_lint

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools",
        description="Invariant linter for the repro codebase.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    lint = commands.add_parser(
        "lint", help="check source trees against the invariant rules"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="diagnostic output format",
    )
    lint.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all registered)",
    )

    commands.add_parser("rules", help="list the registered rules")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = _build_parser().parse_args(argv)

    if arguments.command == "rules":
        for rule in registered_rules():
            print(f"{rule.rule_id}  {rule.title}: {rule.contract}")
        return 0

    rules = registered_rules()
    if arguments.rules:
        wanted = {part.strip() for part in arguments.rules.split(",")}
        unknown = wanted - {rule.rule_id for rule in rules}
        if unknown:
            print(f"unknown rule id(s): {sorted(unknown)}", file=sys.stderr)
            return 2
        rules = [rule for rule in rules if rule.rule_id in wanted]

    try:
        diagnostics = run_lint(arguments.paths, rules=rules)
    except (FileNotFoundError, SyntaxError) as error:
        print(f"repro-lint: {error}", file=sys.stderr)
        return 2

    if arguments.format == "json":
        print(format_json(diagnostics))
    else:
        print(format_text(diagnostics))
    return 1 if diagnostics else 0
