"""Rule-plugin framework for the invariant linter.

The linter machine-checks the contracts the engine's value rests on —
bit-identity across execution paths, provenance-complete results,
append-only telemetry, frozen draw-stream layouts — directly against the
source tree, so a violation fails in CI instead of in an integration
bisect.  The moving parts:

* :class:`SourceFile` — one parsed module: path, AST, and the per-line
  suppression table built from ``# repro-lint: allow REPnnn`` comments.
* :class:`Project` — every file of one lint invocation, with lookup
  helpers (``find_function`` / ``find_class`` / ``find_constant``) that
  cross-module rules use to read registries *out of the code itself*
  (e.g. :data:`repro.io.shards.TELEMETRY_PREFIXES`) rather than from a
  config copy that can drift.
* :class:`Rule` — one invariant.  Subclasses override :meth:`check_file`
  (called once per module) and/or :meth:`check_project` (called once per
  invocation, for cross-module contracts), yield :class:`Diagnostic`
  objects, and register with :func:`register`.  A new rule is ~50 lines:
  subclass, set ``rule_id`` / ``title`` / ``contract``, register, add a
  good/bad fixture pair under ``tests/devtools/fixtures/``.

Suppressions: a trailing ``# repro-lint: allow REP001 — reason`` comment
silences the named rule(s) on that line; a standalone comment line
silences them on the next code line.  The reason text is free-form but
expected — grandfathered sites should say why they are sound.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

__all__ = [
    "Diagnostic",
    "SourceFile",
    "Project",
    "Rule",
    "register",
    "registered_rules",
    "collect_paths",
    "load_project",
    "run_lint",
    "format_text",
    "format_json",
    "dotted_name",
    "import_bindings",
    "resolve_call_name",
]

#: ``# repro-lint: allow REP001`` or ``... allow REP001,REP005 — reason``.
_ALLOW_RE = re.compile(
    r"#\s*repro-lint:\s*allow\s+(?P<rules>REP\d{3}(?:\s*,\s*REP\d{3})*)"
)


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One rule violation, anchored to a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclasses.dataclass
class SourceFile:
    """One parsed module of the lint target."""

    path: Path
    rel: str
    source: str
    tree: ast.Module
    #: line number -> rule ids suppressed on that line.
    allowed: Dict[int, frozenset]

    def is_allowed(self, rule_id: str, line: int) -> bool:
        return rule_id in self.allowed.get(line, frozenset())

    def matches(self, *suffixes: str) -> bool:
        """Whether this module's path ends with any of the given suffixes.

        Suffix matching (``"core/pipeline.py"``) keeps path-scoped rules
        working both on the real tree and on fixture corpora that mirror
        the layout under a different root.
        """
        return any(self.rel.endswith(suffix) for suffix in suffixes)


def _suppression_table(source: str) -> Dict[int, frozenset]:
    """Per-line suppressed rule ids from ``# repro-lint: allow`` comments.

    A comment on a code line covers that line; a comment alone on its
    line covers the next line as well (so long annotations can sit above
    the construct they bless).
    """
    table: Dict[int, set] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(text)
        if not match:
            continue
        rules = {part.strip() for part in match.group("rules").split(",")}
        table.setdefault(lineno, set()).update(rules)
        if text.lstrip().startswith("#"):
            table.setdefault(lineno + 1, set()).update(rules)
    return {line: frozenset(rules) for line, rules in table.items()}


class Project:
    """Every source file of one lint invocation."""

    def __init__(self, files: Sequence[SourceFile]) -> None:
        self.files = list(files)

    def __iter__(self) -> Iterator[SourceFile]:
        return iter(self.files)

    def find_function(
        self, name: str
    ) -> Optional[Tuple[SourceFile, ast.FunctionDef]]:
        """The first module-level function of the given name, if any."""
        for file in self.files:
            for node in file.tree.body:
                if isinstance(node, ast.FunctionDef) and node.name == name:
                    return file, node
        return None

    def find_class(self, name: str) -> Optional[Tuple[SourceFile, ast.ClassDef]]:
        """The first module-level class of the given name, if any."""
        for file in self.files:
            for node in file.tree.body:
                if isinstance(node, ast.ClassDef) and node.name == name:
                    return file, node
        return None

    def find_constant(self, name: str) -> Optional[Tuple[SourceFile, object]]:
        """A module-level literal assignment, evaluated.

        This is how cross-module rules read the in-code registries
        (``TELEMETRY_PREFIXES``, ``WALL_CLOCK_METRICS``, ...): the
        allow-list *is* the code, never a copy in lint config.
        """
        for file in self.files:
            for node in file.tree.body:
                targets: List[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                    value = node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets = [node.target]
                    value = node.value
                else:
                    continue
                for target in targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        try:
                            return file, ast.literal_eval(value)
                        except (ValueError, TypeError, SyntaxError):
                            return None
        return None


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`rule_id` (``"REPnnn"``), :attr:`title` (the
    kebab-case contract name), and :attr:`contract` (one sentence of what
    the rule enforces), then override :meth:`check_file` and/or
    :meth:`check_project`.
    """

    rule_id: str = ""
    title: str = ""
    contract: str = ""

    def check_file(
        self, file: SourceFile, project: Project
    ) -> Iterator[Diagnostic]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Diagnostic]:
        return iter(())

    def diagnostic(
        self, file: SourceFile, node: ast.AST, message: str
    ) -> Diagnostic:
        return Diagnostic(
            rule=self.rule_id,
            path=file.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: List[Type[Rule]] = []


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.rule_id:
        raise ValueError(f"{rule_class.__name__} has no rule_id")
    if any(existing.rule_id == rule_class.rule_id for existing in _REGISTRY):
        raise ValueError(f"duplicate rule id {rule_class.rule_id}")
    _REGISTRY.append(rule_class)
    return rule_class


def registered_rules() -> List[Rule]:
    """One instance of every registered rule, in registration order."""
    # Importing the rule modules is what populates the registry; local
    # import keeps framework importable from the rule modules themselves.
    from . import rules_io, rules_layout  # noqa: F401
    from . import rules_provenance, rules_purity  # noqa: F401
    from . import rules_rng, rules_wallclock  # noqa: F401

    return [
        rule_class()
        for rule_class in sorted(_REGISTRY, key=lambda cls: cls.rule_id)
    ]


# ---------------------------------------------------------------------------
# AST helpers shared by the rule modules
# ---------------------------------------------------------------------------


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_bindings(tree: ast.Module) -> Dict[str, str]:
    """Local name -> canonical dotted module/object for every import."""
    bindings: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bindings[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    bindings[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                bindings[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return bindings


def resolve_call_name(
    func: ast.expr, bindings: Dict[str, str]
) -> Optional[str]:
    """Canonical dotted name of a call target, resolved through imports.

    ``np.random.default_rng`` with ``import numpy as np`` resolves to
    ``numpy.random.default_rng``; ``default_rng`` with ``from
    numpy.random import default_rng`` resolves the same way.
    """
    name = dotted_name(func)
    if name is None:
        return None
    head, _, tail = name.partition(".")
    canonical_head = bindings.get(head, head)
    return f"{canonical_head}.{tail}" if tail else canonical_head


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


def collect_paths(targets: Sequence[str]) -> List[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    found: List[Path] = []
    for target in targets:
        path = Path(target)
        if path.is_dir():
            found.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if not any(part.startswith(".") for part in candidate.parts)
            )
        elif path.suffix == ".py":
            found.append(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {target}")
    return found


def load_project(targets: Sequence[str]) -> Project:
    """Parse every target file into a :class:`Project`."""
    files = []
    for path in collect_paths(targets):
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        files.append(
            SourceFile(
                path=path,
                rel=path.as_posix(),
                source=source,
                tree=tree,
                allowed=_suppression_table(source),
            )
        )
    return Project(files)


def run_lint(
    targets: Sequence[str], rules: Optional[Iterable[Rule]] = None
) -> List[Diagnostic]:
    """Run every rule over the targets; suppressed and sorted."""
    project = load_project(targets)
    active = list(rules) if rules is not None else registered_rules()
    diagnostics: List[Diagnostic] = []
    by_rel = {file.rel: file for file in project.files}
    for rule in active:
        for file in project:
            diagnostics.extend(rule.check_file(file, project))
        diagnostics.extend(rule.check_project(project))
    kept = [
        diagnostic
        for diagnostic in diagnostics
        if not (
            diagnostic.path in by_rel
            and by_rel[diagnostic.path].is_allowed(diagnostic.rule, diagnostic.line)
        )
    ]
    kept.sort(key=lambda diagnostic: (diagnostic.path, diagnostic.line, diagnostic.rule))
    return kept


def format_text(diagnostics: Sequence[Diagnostic]) -> str:
    if not diagnostics:
        return "repro-lint: clean"
    lines = [diagnostic.render() for diagnostic in diagnostics]
    lines.append(f"repro-lint: {len(diagnostics)} violation(s)")
    return "\n".join(lines)


def format_json(diagnostics: Sequence[Diagnostic]) -> str:
    payload = {
        "tool": "repro.devtools",
        "count": len(diagnostics),
        "diagnostics": [diagnostic.to_dict() for diagnostic in diagnostics],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
