"""Frozen draw-stream and decision-column layout snapshots (REP004).

These are the public, append-only layouts every persisted result and
every counter-mode draw coordinate depends on.  The values here are a
*snapshot*, not a second source of truth: REP004 compares the live
definitions against this table and fails when an existing entry is
renumbered or reordered.  **Appending** new streams or columns is always
allowed — extend the layout, then extend this snapshot in the same
change (which is exactly the reviewable diff the rule exists to force).
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

__all__ = ["FROZEN_STREAM_CONSTANTS", "FROZEN_DECISION_SUFFIX"]

#: Module-level stream-id constants of ``simulation/rng.py``.  A draw's
#: Philox key embeds its stream id, so renumbering any of these silently
#: changes every persisted counter-mode result.
FROZEN_STREAM_CONSTANTS: Dict[str, Union[int, Tuple[int, int]]] = {
    "AGE_STREAMS": (42, 43),
    "TRAINED_STREAM": 44,
    "SPOOF_STREAM": 45,
    "NOISE_STREAMS": (46, 47),
    "DECISION_STREAM_BASE": 48,
}

#: The fixed tail of ``core.pipeline.decision_columns``: after the
#: per-stage columns, these keys occupy consecutive offsets 0..3 past the
#: stage block, in exactly this order.  Matrix-mode draw layout and
#: counter-mode stream ids (``DECISION_STREAM_BASE + column``) both
#: depend on it.
FROZEN_DECISION_SUFFIX: Tuple[str, ...] = (
    "override",
    "intention",
    "capability",
    "behavior",
)
