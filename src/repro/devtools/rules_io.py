"""REP005 — checkpoint directories are append-only outside repro.io."""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .framework import Diagnostic, Project, Rule, SourceFile, dotted_name, register

#: The two modules that own checkpoint-file lifecycles: the shard-log
#: writer and the event-log writer (both do a one-time ``r+b`` torn-tail
#: truncation on reopen, which is exactly the recovery this rule keeps
#: everyone else away from).
EXEMPT_SUFFIXES = ("io/shards.py", "io/eventlog.py")

#: Modules whose file I/O is checkpoint-directory I/O by construction:
#: every write-capable handle they open lands in a shared checkpoint
#: tree that crashed workers, resumers, and mergers all read.  The
#: service tree is included wholesale: its cache streams and job ledgers
#: share directories with shard checkpoints, so every service write must
#: go through the io.shards/io.eventlog writers.
CHECKPOINT_MODULE_MARKERS = ("/cluster/", "experiments/backends.py", "/service/")

#: Methods that can rewrite committed bytes in place.
DESTRUCTIVE_METHODS = frozenset(
    {"truncate", "seek", "write_text", "write_bytes"}
)


def _write_mode(call: ast.Call) -> Optional[str]:
    """The mode string of an ``open`` call when it can truncate/overwrite."""
    mode_node: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode_node = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        mode = mode_node.value
        if any(flag in mode for flag in ("w", "+", "x")):
            return mode
    return None


def _mentions_checkpoint(node: ast.AST) -> bool:
    try:
        text = ast.unparse(node)
    except Exception:
        return False
    return "checkpoint" in text.lower()


@register
class AppendOnlyIo(Rule):
    """Committed checkpoint bytes are immutable.

    Crash recovery, shard merge, and resume all depend on the
    secure-logging-style guarantee that a checkpoint file only ever grows:
    torn *final* lines are recoverable precisely because nothing before
    them can have changed.  Outside ``io/shards.py`` and
    ``io/eventlog.py`` (the owners of the one sanctioned torn-tail
    truncation), no module may open a checkpoint path with a
    write/truncate-capable mode or call ``truncate``/``seek``/
    ``write_text``/``write_bytes`` near one.  The rule applies to any
    call mentioning a checkpoint path, and to *all* such calls in the
    checkpoint-handling modules (``cluster/*``, ``experiments/backends``).
    """

    rule_id = "REP005"
    title = "append-only-io"
    contract = (
        "no open(..., 'w'/'+'/'x'), truncate, or seek on checkpoint-dir "
        "paths outside io/shards.py and io/eventlog.py"
    )

    def check_file(
        self, file: SourceFile, project: Project
    ) -> Iterator[Diagnostic]:
        if file.matches(*EXEMPT_SUFFIXES):
            return
        in_checkpoint_module = any(
            marker in file.rel for marker in CHECKPOINT_MODULE_MARKERS
        )
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name == "open" or (name is not None and name.endswith(".open")):
                mode = _write_mode(node)
                if mode is not None and (
                    in_checkpoint_module or _mentions_checkpoint(node)
                ):
                    yield self.diagnostic(
                        file,
                        node,
                        f"open(..., {mode!r}) can rewrite committed "
                        "checkpoint bytes; append ('a') through "
                        "io.shards/io.eventlog writers instead",
                    )
            elif isinstance(node.func, ast.Attribute) and (
                node.func.attr in DESTRUCTIVE_METHODS
            ):
                if in_checkpoint_module or _mentions_checkpoint(node):
                    yield self.diagnostic(
                        file,
                        node,
                        f".{node.func.attr}() on a checkpoint-adjacent "
                        "handle violates the append-only log contract; "
                        "only io/shards.py and io/eventlog.py may heal or "
                        "reposition log files",
                    )
