"""REP001 — no ambient randomness outside the simulation substrate."""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import (
    Diagnostic,
    Project,
    Rule,
    SourceFile,
    register,
    resolve_call_name,
)

#: The one module allowed to own raw generator state.
RNG_MODULE_SUFFIXES = ("simulation/rng.py",)

#: ``numpy.random`` module-level functions that draw from the hidden
#: global generator — never reproducible, always an error.
AMBIENT_NUMPY_FUNCTIONS = frozenset(
    {
        "random", "rand", "randn", "randint", "random_sample", "ranf",
        "sample", "uniform", "normal", "standard_normal", "binomial",
        "poisson", "choice", "shuffle", "permutation", "seed", "bytes",
        "exponential", "beta", "gamma", "lognormal", "integers",
    }
)

#: Generator/bit-generator constructions that are fine *if* their seed
#: argument derives from an explicit ``SeedSequence``.
NUMPY_CONSTRUCTORS = frozenset(
    {"default_rng", "Generator", "RandomState", "Philox", "PCG64",
     "PCG64DXSM", "MT19937", "SFC64"}
)

#: ``random`` (stdlib) module-level functions over the hidden global
#: Mersenne state.
AMBIENT_STDLIB_FUNCTIONS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "normalvariate", "betavariate",
        "expovariate", "triangular", "seed", "getrandbits", "randbytes",
    }
)

#: Identifier fragments that mark a constructor argument as an explicit
#: seed derivation even when the ``SeedSequence`` call happened upstream.
SEEDY_FRAGMENTS = ("seed", "entropy", "sequence", "spawn")


def _derives_from_seed_sequence(call: ast.Call) -> bool:
    """Whether any argument of a constructor call is an explicit seed.

    True when an argument subtree contains a ``SeedSequence`` (or
    ``.spawn`` / ``generate_state``) call, or names an identifier that
    carries seed material (``seed``, ``child_seq``, ...).  Pure
    heuristics on purpose: the rule fails closed on ``default_rng()`` and
    opaque arguments, and the escape hatch is the explicit
    ``# repro-lint: allow REP001 — reason`` annotation.
    """
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        for node in ast.walk(arg):
            if isinstance(node, (ast.Name, ast.Attribute)):
                identifier = (
                    node.id if isinstance(node, ast.Name) else node.attr
                ).lower()
                if identifier == "seedsequence" or any(
                    fragment in identifier for fragment in SEEDY_FRAGMENTS
                ):
                    return True
    return False


@register
class NoAmbientRng(Rule):
    """Randomness must flow through explicit, seeded streams.

    Every draw in the engine is replayable from ``(seed, chunk, round,
    stream, receiver)`` coordinates; a single ambient draw — the numpy
    global generator, the stdlib ``random`` module, or an unseeded
    ``default_rng()`` — silently breaks batch/reference/chunked/parallel
    bit-identity.  Outside ``simulation/rng.py`` a generator construction
    must visibly derive from a ``SeedSequence`` (the
    ``cluster/scheduler.py`` backoff-jitter and ``experiments/design.py``
    per-variant seed-derivation sites are the exemplars) or carry an
    ``allow`` annotation explaining why it is sound.
    """

    rule_id = "REP001"
    title = "no-ambient-rng"
    contract = (
        "generators derive from an explicit SeedSequence; no global-state "
        "numpy.random or stdlib random draws outside simulation/rng.py"
    )

    def check_file(
        self, file: SourceFile, project: Project
    ) -> Iterator[Diagnostic]:
        if file.matches(*RNG_MODULE_SUFFIXES):
            return
        from .framework import import_bindings

        bindings = import_bindings(file.tree)
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolve_call_name(node.func, bindings)
            if name is None:
                continue
            if name.startswith("numpy.random."):
                tail = name[len("numpy.random."):]
                if tail in AMBIENT_NUMPY_FUNCTIONS:
                    yield self.diagnostic(
                        file,
                        node,
                        f"call to numpy.random.{tail} uses the ambient "
                        "global generator; draw through an explicitly "
                        "seeded stream (see simulation/rng.py)",
                    )
                elif tail in NUMPY_CONSTRUCTORS and not _derives_from_seed_sequence(
                    node
                ):
                    yield self.diagnostic(
                        file,
                        node,
                        f"numpy.random.{tail} constructed without an "
                        "explicit SeedSequence-derived seed; ambient "
                        "generator state breaks draw-stream replayability",
                    )
            elif name == "random" or name.startswith("random."):
                tail = name.partition(".")[2]
                if tail in AMBIENT_STDLIB_FUNCTIONS or tail in {
                    "Random",
                    "SystemRandom",
                }:
                    yield self.diagnostic(
                        file,
                        node,
                        f"stdlib random.{tail} is outside the seeded "
                        "simulation substrate; use SimulationRng / "
                        "PhiloxDraws or a SeedSequence-derived generator",
                    )
