"""Static-analysis tooling that machine-checks the engine's contracts.

``python -m repro.devtools lint src/`` (``--format json`` for CI) runs
an AST-based invariant linter over the tree.  Each rule encodes one of
the determinism / provenance / log-integrity contracts the codebase's
value rests on:

========  ========================  ==========================================
REP001    no-ambient-rng            generators derive from explicit
                                    ``SeedSequence``\\ s; no global-state draws
REP002    no-wallclock-in-identity  clock reads only in registered telemetry
                                    (``TELEMETRY_PREFIXES`` modules /
                                    ``WALL_CLOCK_METRICS`` producers)
REP003    provenance-completeness   every engine knob is serialized,
                                    round-tripped, and identity-or-telemetry
REP004    stream-layout-frozen      Philox stream ids and decision columns
                                    are append-only
REP005    append-only-io            committed checkpoint bytes are immutable
                                    outside ``io/shards`` + ``io/eventlog``
REP006    kernel-purity             no I/O / clock / logging in the traversal
                                    kernel modules
REP007    no-mutable-default        no shared mutable default arguments
========  ========================  ==========================================

See ``src/repro/devtools/README.md`` for the full catalogue, the
suppression syntax, and how to register a telemetry exemption; the rule
framework (:mod:`repro.devtools.framework`) makes a new rule ~50 lines.
"""

from __future__ import annotations

from .framework import (
    Diagnostic,
    Project,
    Rule,
    SourceFile,
    format_json,
    format_text,
    register,
    registered_rules,
    run_lint,
)

__all__ = [
    "Diagnostic",
    "Project",
    "Rule",
    "SourceFile",
    "format_json",
    "format_text",
    "register",
    "registered_rules",
    "run_lint",
]
