"""REP006 kernel purity and REP007 mutable default arguments."""

from __future__ import annotations

import ast
from typing import Iterator

from .framework import Diagnostic, Project, Rule, SourceFile, dotted_name, register

#: The traversal kernel and the batch layer it drives: the code every
#: execution path (batch / reference / chunked / parallel / counter)
#: funnels through, where a single side effect or environment read would
#: desynchronize paths that must stay bit-identical.
KERNEL_SUFFIXES = ("core/pipeline.py", "simulation/batch.py")

#: Modules whose import into a kernel is an immediate red flag.
FORBIDDEN_KERNEL_IMPORTS = frozenset(
    {"time", "datetime", "logging", "socket", "subprocess", "threading"}
)

#: Calls with I/O or console side effects.
FORBIDDEN_KERNEL_CALLS = frozenset({"print", "open", "input", "breakpoint"})


@register
class KernelPurity(Rule):
    """The traversal kernel computes; it never observes the world.

    ``core/pipeline.py`` and ``simulation/batch.py`` are executed
    identically by every mode, chunking, and worker count — the
    bit-identity contracts hold only because the kernel's output is a
    pure function of (plan, draws, exposures).  No I/O, no prints, no
    clock or datetime, no logging: anything observability-shaped belongs
    in the engine/telemetry layers above.
    """

    rule_id = "REP006"
    title = "kernel-purity"
    contract = (
        "no I/O, prints, logging, or time/datetime in core/pipeline.py "
        "and simulation/batch.py"
    )

    def check_file(
        self, file: SourceFile, project: Project
    ) -> Iterator[Diagnostic]:
        if not file.matches(*KERNEL_SUFFIXES):
            return
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in FORBIDDEN_KERNEL_IMPORTS:
                        yield self.diagnostic(
                            file,
                            node,
                            f"kernel module imports {alias.name!r}; the "
                            "traversal kernel must stay a pure function "
                            "of (plan, draws, exposures)",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module:
                root = node.module.split(".")[0]
                if root in FORBIDDEN_KERNEL_IMPORTS:
                    yield self.diagnostic(
                        file,
                        node,
                        f"kernel module imports from {node.module!r}; the "
                        "traversal kernel must stay pure",
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in FORBIDDEN_KERNEL_CALLS:
                    yield self.diagnostic(
                        file,
                        node,
                        f"{name}() in a kernel module: side effects in "
                        "the traversal kernel break path bit-identity "
                        "and O(batch) memory guarantees",
                    )
                elif name is not None and name.startswith(
                    ("sys.stdout", "sys.stderr", "logging.")
                ):
                    yield self.diagnostic(
                        file,
                        node,
                        f"{name} used in a kernel module; route "
                        "observability through the engine layer",
                    )


@register
class NoMutableDefaults(Rule):
    """Default argument values must not be shared mutable state.

    A ``def f(x, cache={})`` default is evaluated once and shared across
    every call — state that leaks between simulations is exactly the
    kind of hidden coupling the reproducibility contracts forbid.  Use
    ``None`` plus an in-body default, or a frozen/tuple value.
    """

    rule_id = "REP007"
    title = "no-mutable-default"
    contract = "no list/dict/set (literal or constructor) default arguments"

    def check_file(
        self, file: SourceFile, project: Project
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(file.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                default
                for default in node.args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                mutable = isinstance(
                    default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)
                ) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in {"list", "dict", "set", "bytearray"}
                )
                if mutable:
                    yield self.diagnostic(
                        file,
                        default,
                        f"mutable default argument in {node.name}(); "
                        "shared call-to-call state undermines "
                        "reproducibility — default to None and build "
                        "inside the function",
                    )
