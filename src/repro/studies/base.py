"""Common types for the empirical-study registry.

The paper's case studies rest on findings from published user studies
(Egelman et al., Wu et al., Gaw & Felten, Kuo et al., ...).  We cannot
re-run those studies; instead each one is encoded as a :class:`Study`
containing the headline :class:`Finding` values our simulations are
calibrated against.  Every finding records its provenance so the chain
from paper claim → cited study → calibration constant → simulated result
is auditable.

The numeric values are approximations of the cited studies' headline
results, adequate for reproducing orderings and rough magnitudes (the
"shape" of the case-study conclusions), not exact replications.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..core.components import Component
from ..core.exceptions import ModelError

__all__ = ["Finding", "Study"]


@dataclasses.dataclass(frozen=True)
class Finding:
    """One headline finding from a cited study.

    Attributes
    ----------
    key:
        Stable identifier used by calibrations and benchmarks, e.g.
        ``"active_warning_heed_rate"``.
    statement:
        The finding in words.
    value:
        The numeric reading used for calibration, when one exists (rates
        are fractions in [0, 1]).
    component:
        The framework component the finding is evidence about, when there
        is a single obvious one.
    """

    key: str
    statement: str
    value: Optional[float] = None
    component: Optional[Component] = None

    def __post_init__(self) -> None:
        if not self.key:
            raise ModelError("finding key must be non-empty")
        if not self.statement:
            raise ModelError("finding statement must be non-empty")


@dataclasses.dataclass(frozen=True)
class Study:
    """A cited user study and the findings we encode from it."""

    study_id: str
    citation: str
    year: int
    findings: Tuple[Finding, ...]
    paper_reference_number: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.study_id:
            raise ModelError("study_id must be non-empty")
        keys = [finding.key for finding in self.findings]
        if len(keys) != len(set(keys)):
            raise ModelError(f"duplicate finding keys in study {self.study_id!r}")

    def finding(self, key: str) -> Finding:
        """Look up a finding by key."""
        for item in self.findings:
            if item.key == key:
                return item
        raise KeyError(f"study {self.study_id!r} has no finding {key!r}")

    def value(self, key: str) -> float:
        """Numeric value of a finding (raises if the finding is qualitative)."""
        finding = self.finding(key)
        if finding.value is None:
            raise ModelError(f"finding {key!r} of study {self.study_id!r} has no numeric value")
        return finding.value

    def keys(self) -> List[str]:
        return [finding.key for finding in self.findings]
