"""Wu, Miller & Garfinkel (CHI 2006): do security toolbars prevent phishing?

Reference [39].  The study simulated three passive anti-phishing toolbar
indicators and found them largely ineffective: a quarter of participants
claimed they had not noticed the toolbars even after being told to look for
them, and many participants who did notice them did not heed them because
the toolbar conflicted with their primary goal of completing the task.
"""

from __future__ import annotations

from ..core.components import Component
from .base import Finding, Study

__all__ = ["STUDY"]

STUDY = Study(
    study_id="wu2006",
    citation=(
        "M. Wu, R. C. Miller, and S. L. Garfinkel. Do security toolbars actually "
        "prevent phishing attacks? CHI 2006."
    ),
    year=2006,
    paper_reference_number=39,
    findings=(
        Finding(
            key="toolbar_not_noticed_rate",
            statement=(
                "25% of participants claimed they had not noticed the passive "
                "toolbar warnings, even after being explicitly instructed to look "
                "for them."
            ),
            value=0.25,
            component=Component.ATTENTION_SWITCH,
        ),
        Finding(
            key="toolbar_spoof_success_rate",
            statement=(
                "A substantial fraction of participants were fooled by phishing "
                "sites despite the passive toolbar indicators being present."
            ),
            value=0.66,
            component=Component.BEHAVIOR,
        ),
        Finding(
            key="primary_task_dominates",
            statement=(
                "Participants focused on completing their primary task and "
                "rationalized away the toolbar's warnings."
            ),
            component=Component.MOTIVATION,
        ),
    ),
)
