"""Egelman, Cranor & Hong (CHI 2008): browser phishing-warning effectiveness.

Reference [12] of the paper and the primary empirical grounding for the
anti-phishing case study (Section 3.1).  The study exposed participants to
spear-phishing messages and measured how the Firefox active warning, the
IE7 active warning, and the IE7 passive warning affected whether
participants reached the phishing site.

Headline readings encoded below (approximate):

* Nearly all participants noticed the active (blocking) warnings; the
  large majority heeded them.
* The passive IE warning was frequently not noticed at all (it loads a few
  seconds late and is dismissed by typing) and protected only a small
  minority.
* Some participants confused the IE active warning with routine error
  pages; Firefox's visually distinct warning was understood more often.
* Users without a mental model of phishing assumed a transient site
  problem and retried the emailed link — a mistake that nevertheless
  "failed safely".
"""

from __future__ import annotations

from ..core.components import Component
from .base import Finding, Study

__all__ = ["STUDY"]

STUDY = Study(
    study_id="egelman2008",
    citation=(
        "S. Egelman, L. F. Cranor, and J. Hong. You've Been Warned: An Empirical "
        "Study of the Effectiveness of Web Browser Phishing Warnings. CHI 2008."
    ),
    year=2008,
    paper_reference_number=12,
    findings=(
        Finding(
            key="active_warning_protection_rate",
            statement=(
                "The large majority of participants shown an active (blocking) "
                "phishing warning did not reach the phishing site."
            ),
            value=0.85,
            component=Component.COMMUNICATION,
        ),
        Finding(
            key="firefox_warning_protection_rate",
            statement=(
                "Essentially all Firefox participants were protected; none "
                "entered credentials on the phishing site."
            ),
            value=0.95,
            component=Component.COMMUNICATION,
        ),
        Finding(
            key="passive_warning_protection_rate",
            statement=(
                "Only a small minority of participants shown the passive IE "
                "warning were protected from the phishing site."
            ),
            value=0.13,
            component=Component.ATTENTION_SWITCH,
        ),
        Finding(
            key="passive_warning_notice_rate",
            statement=(
                "Many participants never noticed the passive IE warning, which "
                "loads late and is dismissed by typing into the page."
            ),
            value=0.45,
            component=Component.ATTENTION_SWITCH,
        ),
        Finding(
            key="active_warning_notice_rate",
            statement="Participants reliably noticed the Firefox and active IE warnings.",
            value=0.97,
            component=Component.ATTENTION_SWITCH,
        ),
        Finding(
            key="warning_belief_rate",
            statement=(
                "Most users who read the warnings believed they should heed them "
                "and were motivated to do so."
            ),
            value=0.8,
            component=Component.ATTITUDES_AND_BELIEFS,
        ),
        Finding(
            key="ie_warning_confused_with_routine",
            statement=(
                "Some users erroneously believed the IE warning was a routine "
                "error page such as a 404, because it resembles other IE warnings."
            ),
            value=0.25,
            component=Component.COMPREHENSION,
        ),
        Finding(
            key="override_because_option_offered",
            statement=(
                "A few users reasoned that because an option to proceed was "
                "offered, the risk could not be severe."
            ),
            value=0.1,
            component=Component.ATTITUDES_AND_BELIEFS,
        ),
        Finding(
            key="mistaken_retry_fails_safe",
            statement=(
                "Users with inaccurate mental models repeatedly re-clicked the "
                "emailed link; the mistake still kept them off the site (fail-safe)."
            ),
            component=Component.BEHAVIOR,
        ),
    ),
)
