"""Kuo, Romanosky & Cranor (SOUPS 2006): mnemonic phrase-based passwords.

Reference [23].  The study found that users can follow password-creation
guidance (they are capable of creating compliant passwords), understand
typical password guidance, but when advised to build passwords from
mnemonic phrases they often pick well-known phrases — leaving the result
more predictable than intended.
"""

from __future__ import annotations

from ..core.components import Component
from .base import Finding, Study

__all__ = ["STUDY"]

STUDY = Study(
    study_id="kuo2006",
    citation=(
        "C. Kuo, S. Romanosky, and L. F. Cranor. Human selection of mnemonic "
        "phrase-based passwords. SOUPS 2006."
    ),
    year=2006,
    paper_reference_number=23,
    findings=(
        Finding(
            key="can_create_compliant_passwords",
            statement=(
                "Users are capable of following typical password guidance to "
                "create policy-compliant passwords."
            ),
            value=0.85,
            component=Component.CAPABILITIES,
        ),
        Finding(
            key="understand_password_guidance",
            statement=(
                "Most people now understand typical password security guidance "
                "and know what they are supposed to do to apply it."
            ),
            value=0.8,
            component=Component.COMPREHENSION,
        ),
        Finding(
            key="mnemonic_phrases_predictable",
            statement=(
                "Users advised to use mnemonic phrases often select well-known "
                "phrases, making the resulting passwords more predictable."
            ),
            value=0.4,
            component=Component.BEHAVIOR,
        ),
    ),
)
