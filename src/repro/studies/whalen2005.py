"""Whalen & Inkpen (GI 2005): eye-tracking of browser security cues.

Reference [35].  Using an eye tracker, the study found that most users do
not even attempt to look for the SSL lock icon when visiting SSL-enabled
websites — direct evidence for attention-switch failures of passive
chrome indicators.
"""

from __future__ import annotations

from ..core.components import Component
from .base import Finding, Study

__all__ = ["STUDY"]

STUDY = Study(
    study_id="whalen2005",
    citation=(
        "T. Whalen and K. M. Inkpen. Gathering evidence: use of visual security "
        "cues in web browsers. Graphics Interface 2005."
    ),
    year=2005,
    paper_reference_number=35,
    findings=(
        Finding(
            key="lock_icon_not_looked_at_rate",
            statement=(
                "Most users do not even attempt to look for the SSL lock icon "
                "when visiting SSL-enabled websites."
            ),
            value=0.65,
            component=Component.ATTENTION_SWITCH,
        ),
        Finding(
            key="lock_icon_never_noticed",
            statement=(
                "Some users have never noticed the presence of the SSL lock icon "
                "in their web browser."
            ),
            component=Component.ATTENTION_SWITCH,
        ),
    ),
)
