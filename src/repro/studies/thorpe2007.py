"""Thorpe & van Oorschot (USENIX Security 2007): graphical-password hot spots.

Reference [34].  Background images used in click-based graphical password
schemes have a small number of popular "hot spots" from which users tend to
select their click points; human-seeded attacks exploiting them
substantially reduce the guessing effort — the paper's second example of
predictable behavior.
"""

from __future__ import annotations

from ..core.components import Component
from .base import Finding, Study

__all__ = ["STUDY"]

STUDY = Study(
    study_id="thorpe2007",
    citation=(
        "J. Thorpe and P. C. van Oorschot. Human-Seeded Attacks and Exploiting "
        "Hot-Spots in Graphical Passwords. USENIX Security 2007."
    ),
    year=2007,
    paper_reference_number=34,
    findings=(
        Finding(
            key="hotspot_concentration",
            statement=(
                "Click-point choices concentrate on a small number of popular "
                "hot spots in the background image."
            ),
            value=0.5,
            component=Component.BEHAVIOR,
        ),
        Finding(
            key="human_seeded_attack_advantage",
            statement=(
                "Human-seeded attacks using harvested hot spots substantially "
                "reduce the number of guesses required."
            ),
            component=Component.BEHAVIOR,
        ),
    ),
)
