"""Encoded findings from the user studies the paper cites.

Each module encodes one cited study as a :class:`~repro.studies.base.Study`
with the headline :class:`~repro.studies.base.Finding` values our
simulations are calibrated against.  See DESIGN.md for the substitution
rationale (we simulate populations instead of re-running the studies).
"""

from .base import Finding, Study
from .registry import ALL_STUDIES, StudyRegistry, registry

__all__ = ["Finding", "Study", "ALL_STUDIES", "StudyRegistry", "registry"]
