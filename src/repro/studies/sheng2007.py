"""Sheng et al. (SOUPS 2007): Anti-Phishing Phil training game.

Reference [33].  An interactive training game teaching users to identify
phishing URLs improved detection without increasing false positives;
evidence that engaging, interactive training improves knowledge
acquisition, retention, and transfer relative to reading static material.
"""

from __future__ import annotations

from ..core.components import Component
from .base import Finding, Study

__all__ = ["STUDY"]

STUDY = Study(
    study_id="sheng2007",
    citation=(
        "S. Sheng, B. Magnien, P. Kumaraguru, A. Acquisti, L. F. Cranor, J. Hong, "
        "and E. Nunge. Anti-Phishing Phil: The Design and Evaluation of a Game "
        "That Teaches People Not to Fall for Phish. SOUPS 2007."
    ),
    year=2007,
    paper_reference_number=33,
    findings=(
        Finding(
            key="training_detection_improvement",
            statement=(
                "Game-based training substantially improved users' ability to "
                "identify phishing web sites compared with existing materials."
            ),
            value=0.4,
            component=Component.KNOWLEDGE_ACQUISITION,
        ),
        Finding(
            key="interactive_training_retention",
            statement=(
                "Interactive, involving training improves retention and transfer "
                "relative to passive reading."
            ),
            component=Component.KNOWLEDGE_RETENTION,
        ),
    ),
)
