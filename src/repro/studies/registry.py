"""Registry of every encoded study.

Provides keyed access to all encoded studies and to individual findings,
so calibrations, system models, and benchmarks can cite them as
``registry.value("egelman2008", "passive_warning_protection_rate")``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.exceptions import ModelError
from . import (
    adams_sasse1999,
    davis2004,
    dhamija2006,
    egelman2008,
    gaw_felten2006,
    kuo2006,
    sheng2007,
    thorpe2007,
    whalen2005,
    wu2006,
)
from .base import Finding, Study

__all__ = ["ALL_STUDIES", "StudyRegistry", "registry"]

ALL_STUDIES: Tuple[Study, ...] = (
    adams_sasse1999.STUDY,
    davis2004.STUDY,
    dhamija2006.STUDY,
    egelman2008.STUDY,
    gaw_felten2006.STUDY,
    kuo2006.STUDY,
    sheng2007.STUDY,
    thorpe2007.STUDY,
    whalen2005.STUDY,
    wu2006.STUDY,
)


class StudyRegistry:
    """Keyed access to the encoded studies and findings."""

    def __init__(self, studies: Tuple[Study, ...] = ALL_STUDIES) -> None:
        self._studies: Dict[str, Study] = {}
        for study in studies:
            if study.study_id in self._studies:
                raise ModelError(f"duplicate study id {study.study_id!r}")
            self._studies[study.study_id] = study

    def __len__(self) -> int:
        return len(self._studies)

    def __contains__(self, study_id: str) -> bool:
        return study_id in self._studies

    def study(self, study_id: str) -> Study:
        if study_id not in self._studies:
            raise KeyError(f"unknown study {study_id!r}")
        return self._studies[study_id]

    def study_ids(self) -> List[str]:
        return sorted(self._studies)

    def finding(self, study_id: str, key: str) -> Finding:
        return self.study(study_id).finding(key)

    def value(self, study_id: str, key: str) -> float:
        """Numeric value of a finding, e.g. a protection rate."""
        return self.study(study_id).value(key)

    def findings_for_component(self, component) -> List[Tuple[Study, Finding]]:
        """Every finding tagged with a given framework component."""
        matches: List[Tuple[Study, Finding]] = []
        for study in self._studies.values():
            for finding in study.findings:
                if finding.component is component:
                    matches.append((study, finding))
        return matches

    def bibliography(self) -> List[str]:
        """Citation strings for every encoded study, sorted by id."""
        return [self._studies[study_id].citation for study_id in self.study_ids()]


#: Module-level registry most callers use.
registry = StudyRegistry()
