"""Davis, Monrose & Reiter (USENIX Security 2004): user choice in graphical passwords.

Reference [7].  Students using a face-based graphical password scheme
tended to select attractive faces of their own race; knowing a user's race
and gender lets an attacker substantially reduce the number of guesses —
the paper's example of *predictable behavior* at the behavior stage.
"""

from __future__ import annotations

from ..core.components import Component
from .base import Finding, Study

__all__ = ["STUDY"]

STUDY = Study(
    study_id="davis2004",
    citation=(
        "D. Davis, F. Monrose, and M. K. Reiter. On User Choice in Graphical "
        "Password Schemes. USENIX Security 2004."
    ),
    year=2004,
    paper_reference_number=7,
    findings=(
        Finding(
            key="face_choice_predictability",
            statement=(
                "Face-based graphical password choices are strongly predictable "
                "from the user's race and gender."
            ),
            value=0.55,
            component=Component.BEHAVIOR,
        ),
        Finding(
            key="guessing_advantage",
            statement=(
                "An attacker who knows a user's demographics can substantially "
                "reduce the number of guesses needed."
            ),
            component=Component.BEHAVIOR,
        ),
    ),
)
