"""Adams & Sasse (CACM 1999): users are not the enemy.

Reference [1].  The classic study of password behaviour in organizations:
users circumvent password policies not out of malice but because the
policies demand more memory than humans have and conflict with getting
work done; frequent forced changes make compliance worse.
"""

from __future__ import annotations

from ..core.components import Component
from .base import Finding, Study

__all__ = ["STUDY"]

STUDY = Study(
    study_id="adams_sasse1999",
    citation=(
        "A. Adams and M. A. Sasse. Users are not the enemy: why users compromise "
        "computer security mechanisms and how to take remedial measures. "
        "Communications of the ACM 42(12), 1999."
    ),
    year=1999,
    paper_reference_number=1,
    findings=(
        Finding(
            key="noncompliance_is_workload_driven",
            statement=(
                "Non-compliance with password policies is driven by memory limits "
                "and conflict with primary work, not by malice."
            ),
            component=Component.MOTIVATION,
        ),
        Finding(
            key="expiry_worsens_compliance",
            statement=(
                "Frequent mandatory password changes increase write-downs, reuse, "
                "and weak-password workarounds."
            ),
            value=0.3,
            component=Component.CAPABILITIES,
        ),
    ),
)
