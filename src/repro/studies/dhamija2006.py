"""Dhamija, Tygar & Hearst (CHI 2006): why phishing works.

Reference [9].  The study showed participants legitimate and spoofed
websites and found that well-crafted phishing sites fooled the large
majority of participants, that many participants ignore browser security
cues entirely, and that participants' mental models of what makes a site
legitimate are often wrong (focusing on content and logos rather than
indicators).
"""

from __future__ import annotations

from ..core.components import Component
from .base import Finding, Study

__all__ = ["STUDY"]

STUDY = Study(
    study_id="dhamija2006",
    citation=(
        "R. Dhamija, J. D. Tygar, and M. Hearst. Why phishing works. CHI 2006."
    ),
    year=2006,
    paper_reference_number=9,
    findings=(
        Finding(
            key="best_phish_fool_rate",
            statement=(
                "The best phishing site in the study fooled about 90% of "
                "participants."
            ),
            value=0.9,
            component=Component.KNOWLEDGE_AND_EXPERIENCE,
        ),
        Finding(
            key="ignore_browser_cues_rate",
            statement=(
                "Roughly a quarter of participants did not look at browser-based "
                "cues (address bar, status bar, security indicators) at all."
            ),
            value=0.23,
            component=Component.ATTENTION_SWITCH,
        ),
        Finding(
            key="wrong_legitimacy_mental_model",
            statement=(
                "Participants judged legitimacy from page content, logos, and "
                "polish — signals attackers fully control."
            ),
            component=Component.KNOWLEDGE_AND_EXPERIENCE,
        ),
    ),
)
