"""Gaw & Felten (SOUPS 2006): password management strategies.

Reference [16].  The survey/study of online-account password management
found widespread password reuse that increases as people accumulate more
accounts, because people cannot remember many distinct passwords — the
capability failure at the heart of the password-policy case study.
"""

from __future__ import annotations

from ..core.components import Component
from .base import Finding, Study

__all__ = ["STUDY"]

STUDY = Study(
    study_id="gaw_felten2006",
    citation=(
        "S. Gaw and E. W. Felten. Password management strategies for online "
        "accounts. SOUPS 2006."
    ),
    year=2006,
    paper_reference_number=16,
    findings=(
        Finding(
            key="password_reuse_rate",
            statement=(
                "Most users reuse passwords across accounts; reuse increases as "
                "the number of accounts grows."
            ),
            value=0.6,
            component=Component.CAPABILITIES,
        ),
        Finding(
            key="mean_unique_passwords",
            statement=(
                "Users maintain only a handful of unique passwords (about three) "
                "regardless of how many accounts they hold."
            ),
            value=3.0,
            component=Component.CAPABILITIES,
        ),
        Finding(
            key="memorability_limits_compliance",
            statement=(
                "People justify reuse by the impossibility of remembering many "
                "strong, distinct passwords."
            ),
            component=Component.CAPABILITIES,
        ),
    ),
)
