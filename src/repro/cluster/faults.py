"""Deterministic fault injection for cluster workers.

The scheduler's crash-tolerance claims are only worth something if they
are *exercised*: the tests (and the CI kill-one-worker smoke) inject
worker failures at exact, reproducible points instead of hoping for
flaky timing.  A :class:`FaultInjector` is a frozen, picklable
description of one failure campaign:

* ``kill_after_rows`` — hard-kill the worker process (``os._exit``, no
  cleanup) once it has appended N fresh rows to its shard log,
  optionally leaving a **torn final line** first — the exact on-disk
  signature of a crash mid-append that the shard-log reader must
  recover from;
* ``drop_heartbeats_after`` — suppress heartbeat emission once N fresh
  rows are committed while the worker keeps computing, so the scheduler
  must detect the silence and requeue;
* ``delay_completion_seconds`` — linger after finishing the shard, for
  exercising the timeout-kills-a-finished-worker path.

``shards`` and ``attempts`` scope the campaign: a fault that strikes
only on attempt 1 of shard 1 makes "crash, requeue, recover" a
deterministic script rather than a race.  Everything is decided from the
worker's own (shard, attempt, rows) coordinates — no randomness, no wall
clock.
"""

from __future__ import annotations

import dataclasses
import os
import time
from pathlib import Path
from typing import Optional, Tuple

__all__ = ["FAULT_KILL_EXIT_CODE", "FaultInjector"]

#: Exit status of a worker killed by :meth:`FaultInjector.kill_now` — a
#: recognizable "injected crash" in scheduler event logs and tests.
FAULT_KILL_EXIT_CODE = 70

#: The unterminated fragment a torn-line kill leaves at the end of the
#: shard log: valid JSON prefix, no newline — exactly what a process
#: dying inside ``write()`` leaves behind.
TORN_FRAGMENT = '{"kind": "row", "row": {"experiment": "torn'


@dataclasses.dataclass(frozen=True)
class FaultInjector:
    """A deterministic, picklable worker-failure campaign.

    ``shards`` / ``attempts`` of ``None`` mean "every shard" / "every
    attempt".  The default ``attempts=(1,)`` strikes only the first
    attempt, so a requeued shard succeeds — the canonical
    crash-then-recover script.
    """

    shards: Optional[Tuple[int, ...]] = None
    attempts: Optional[Tuple[int, ...]] = (1,)
    kill_after_rows: Optional[int] = None
    torn_line: bool = True
    drop_heartbeats_after: Optional[int] = None
    delay_completion_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kill_after_rows is not None and self.kill_after_rows < 0:
            raise ValueError("kill_after_rows must be >= 0")
        if self.drop_heartbeats_after is not None and self.drop_heartbeats_after < 0:
            raise ValueError("drop_heartbeats_after must be >= 0")
        if self.delay_completion_seconds < 0:
            raise ValueError("delay_completion_seconds must be >= 0")

    def applies_to(self, shard_index: int, attempt: int) -> bool:
        """Whether this campaign is armed for one (shard, attempt)."""
        if self.shards is not None and shard_index not in self.shards:
            return False
        if self.attempts is not None and attempt not in self.attempts:
            return False
        return True

    def should_kill(self, rows_appended: int) -> bool:
        """Whether an armed worker dies at this fresh-row count."""
        return (
            self.kill_after_rows is not None
            and rows_appended >= self.kill_after_rows
        )

    def should_drop_heartbeat(self, rows_appended: int) -> bool:
        """Whether an armed worker suppresses this heartbeat."""
        return (
            self.drop_heartbeats_after is not None
            and rows_appended >= self.drop_heartbeats_after
        )

    def kill_now(self, shard_log_path: Optional[Path]) -> None:
        """Die the way a real crash dies: optionally tear the shard log's
        final line, then exit the process without any cleanup."""
        if self.torn_line and shard_log_path is not None and shard_log_path.exists():
            with open(shard_log_path, "a", encoding="utf-8") as handle:
                handle.write(TORN_FRAGMENT)
                handle.flush()
                os.fsync(handle.fileno())
        os._exit(FAULT_KILL_EXIT_CODE)

    def linger(self) -> None:
        """Sleep out ``delay_completion_seconds`` in small slices (so a
        scheduler kill lands promptly)."""
        # Injected-fault pacing: these clock reads time the *harness
        # misbehaviour* (a worker that hangs after finishing) and can never
        # reach a result row or checkpoint byte.
        deadline = time.monotonic() + self.delay_completion_seconds  # repro-lint: allow REP002 — fault pacing
        while time.monotonic() < deadline:  # repro-lint: allow REP002 — fault pacing
            time.sleep(min(0.05, max(0.0, deadline - time.monotonic())))  # repro-lint: allow REP002 — fault pacing
