"""``python -m repro.cluster`` — see :mod:`repro.cluster.cli`."""

import sys

from .cli import main

sys.exit(main())
