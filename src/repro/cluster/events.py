"""The scheduler's structured event log.

Every scheduler state transition becomes one appended JSONL record in
``scheduler-events.jsonl``, living alongside the shard logs in the
checkpoint directory (a reserved telemetry name —
:data:`repro.io.shards.TELEMETRY_PREFIXES` — so checkpoint loading skips
it).  The log is the observability surface for a sharded sweep: what was
queued when, which workers made progress, which died, which shards were
requeued with what backoff, and what the final merge produced.  Like the
shard logs it is append-only and torn-tail tolerant, so a crashed
scheduler leaves a readable prefix and a re-invocation keeps appending
to the same stream (``seq`` stays strictly ordered across invocations).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..io.eventlog import EventLogWriter, read_events

__all__ = [
    "EVENTS_FILENAME",
    "EVENT_KINDS",
    "SchedulerEventLog",
    "scheduler_events_path",
    "read_scheduler_events",
]

#: The scheduler event log's file name inside the checkpoint directory.
EVENTS_FILENAME = "scheduler-events.jsonl"

#: Every event kind the scheduler emits, in rough lifecycle order.
EVENT_KINDS = (
    "queued",        # shard entered the work queue (attempt, ready delay)
    "started",       # worker launched for a shard attempt
    "heartbeat",     # scheduler observed fresh progress (rows)
    "timeout",       # no progress within heartbeat_timeout; worker killed
    "worker-failed", # worker exited non-zero
    "requeued",      # shard scheduled for another attempt (backoff delay)
    "completed",     # worker exited clean; shard's slice fully committed
    "exhausted",     # shard failed max_attempts times; run aborts
    "merged",        # all shards done; canonical ResultSet assembled
)

PathLike = Union[str, Path]


def scheduler_events_path(checkpoint_dir: PathLike) -> Path:
    """Where the scheduler event log lives for one checkpoint directory."""
    return Path(checkpoint_dir) / EVENTS_FILENAME


def read_scheduler_events(
    checkpoint_dir: PathLike, kind: Optional[str] = None
) -> List[Dict[str, Any]]:
    """Committed scheduler events, in order (optionally one kind only)."""
    events = read_events(scheduler_events_path(checkpoint_dir))
    if kind is not None:
        events = [event for event in events if event.get("event") == kind]
    return events


class SchedulerEventLog:
    """Typed emitter over the append-only event stream.

    ``clock`` stamps each event (injectable, so the fake-clock scheduler
    tests produce deterministic timelines); ``seq`` ordering comes from
    the underlying :class:`~repro.io.eventlog.EventLogWriter`.
    """

    def __init__(self, checkpoint_dir: PathLike, clock=time.monotonic) -> None:
        self.path = scheduler_events_path(checkpoint_dir)
        self._writer = EventLogWriter(self.path)
        self._clock = clock

    def emit(self, kind: str, **fields: Any) -> Dict[str, Any]:
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown scheduler event kind {kind!r}; known: {EVENT_KINDS}"
            )
        return self._writer.append(
            {"event": kind, "time": round(float(self._clock()), 6), **fields}
        )

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "SchedulerEventLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
