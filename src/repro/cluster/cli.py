"""Command-line entry point: ``python -m repro.cluster``.

Runs a sharded sweep end to end from the shell — declare a grid, pick a
shard count and worker fleet size, point at a checkpoint directory, and
the scheduler dispatches, monitors, requeues, and merges.  Because every
row is checkpointed append-only and every retry dedups against the
checkpoint directory, the *same command re-run after any crash* (worker
or scheduler) resumes where it left off instead of starting over::

    python -m repro.cluster run \\
        --scenario passwords \\
        --grid '{"distinct_accounts": [4, 8, 16], "single_sign_on": [false, true]}' \\
        --task recall-passwords --n-receivers 2000 --seed 7 \\
        --shards 4 --workers 2 --checkpoint-dir ckpt --output results.json

    python -m repro.cluster events --checkpoint-dir ckpt

``run --inject-*`` arms the deterministic fault injector (kill a worker
after N rows, drop heartbeats, delay completion) so the crash → requeue
→ resume path can be drilled from the shell; see
:mod:`repro.cluster.faults`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from ..experiments.design import Experiment, SweepSpec
from .faults import FaultInjector
from .events import read_scheduler_events
from .scheduler import ShardScheduler
from .transports import LocalProcessFleet

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="Fault-tolerant work-queue scheduler for sharded sweeps.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="schedule a sharded sweep to completion and merge it"
    )
    run.add_argument("--scenario", required=True, help="registered scenario name")
    run.add_argument(
        "--grid",
        required=True,
        help="JSON object: parameter name -> list of values to sweep",
    )
    run.add_argument(
        "--base",
        default="{}",
        help="JSON object of fixed parameter overrides applied to every point",
    )
    run.add_argument("--name", default=None, help="experiment name (default: derived)")
    run.add_argument("--n-receivers", type=int, default=500)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--task", default=None)
    run.add_argument("--mode", default="batch", choices=("batch", "reference"))
    run.add_argument("--rounds", type=int, default=None)
    run.add_argument("--recovery-rate", type=float, default=None)
    run.add_argument("--shards", type=int, required=True, help="shard count")
    run.add_argument(
        "--workers", type=int, default=None, help="concurrent worker processes"
    )
    run.add_argument("--checkpoint-dir", required=True)
    run.add_argument("--heartbeat-timeout", type=float, default=60.0)
    run.add_argument("--poll-interval", type=float, default=0.05)
    run.add_argument("--max-attempts", type=int, default=4)
    run.add_argument("--backoff-base", type=float, default=0.25)
    run.add_argument("--backoff-cap", type=float, default=8.0)
    run.add_argument("--backoff-jitter", type=float, default=0.1)
    run.add_argument(
        "--output", default=None, help="write the merged ResultSet JSON here"
    )
    run.add_argument(
        "--metrics",
        default=None,
        help="comma-separated metric names to print as a Markdown table",
    )
    fault = run.add_argument_group(
        "fault injection (deterministic crash drills; see repro.cluster.faults)"
    )
    fault.add_argument(
        "--inject-kill-after-rows",
        type=int,
        default=None,
        help="hard-kill an armed worker once it appended N fresh rows",
    )
    fault.add_argument(
        "--inject-drop-heartbeats-after",
        type=int,
        default=None,
        help="suppress an armed worker's heartbeats after N fresh rows",
    )
    fault.add_argument(
        "--inject-delay-completion",
        type=float,
        default=0.0,
        help="armed workers linger this many seconds after finishing",
    )
    fault.add_argument(
        "--inject-shards",
        default=None,
        help="comma-separated shard indices the fault arms on (default: all)",
    )
    fault.add_argument(
        "--inject-attempts",
        default="1",
        help="comma-separated attempt numbers the fault arms on (default: 1)",
    )

    events = commands.add_parser(
        "events", help="print the scheduler event log of a checkpoint directory"
    )
    events.add_argument("--checkpoint-dir", required=True)
    events.add_argument("--kind", default=None, help="only this event kind")
    return parser


def _parse_indices(text: Optional[str]) -> Optional[tuple]:
    if text is None or text.strip() == "":
        return None
    return tuple(int(part) for part in text.split(","))


def _fault_from_args(args: argparse.Namespace) -> Optional[FaultInjector]:
    if (
        args.inject_kill_after_rows is None
        and args.inject_drop_heartbeats_after is None
        and args.inject_delay_completion == 0.0
    ):
        return None
    return FaultInjector(
        shards=_parse_indices(args.inject_shards),
        attempts=_parse_indices(args.inject_attempts),
        kill_after_rows=args.inject_kill_after_rows,
        drop_heartbeats_after=args.inject_drop_heartbeats_after,
        delay_completion_seconds=args.inject_delay_completion,
    )


def _run(args: argparse.Namespace) -> int:
    grid = json.loads(args.grid)
    base = json.loads(args.base)
    sweep = SweepSpec(scenario=args.scenario, grid=grid, base=base)
    settings = dict(n_receivers=args.n_receivers, seed=args.seed, mode=args.mode)
    if args.task is not None:
        settings["task"] = args.task
    if args.rounds is not None:
        settings["rounds"] = args.rounds
    if args.recovery_rate is not None:
        settings["recovery_rate"] = args.recovery_rate
    name = args.name or f"{args.scenario}-cluster-sweep"
    experiment = Experiment.from_sweep(name, sweep, **settings)

    scheduler = ShardScheduler(
        experiment,
        shard_count=args.shards,
        checkpoint_dir=args.checkpoint_dir,
        transport=LocalProcessFleet(max_workers=args.workers),
        heartbeat_timeout=args.heartbeat_timeout,
        poll_interval=args.poll_interval,
        max_attempts=args.max_attempts,
        backoff_base=args.backoff_base,
        backoff_cap=args.backoff_cap,
        backoff_jitter=args.backoff_jitter,
        fault_injector=_fault_from_args(args),
    )
    print(
        f"scheduling {len(experiment.variants)} variants across "
        f"{args.shards} shards ({scheduler.max_workers} workers) -> "
        f"{args.checkpoint_dir}"
    )
    merged = scheduler.run()
    requeues = read_scheduler_events(args.checkpoint_dir, kind="requeued")
    print(
        f"completed: {len(merged.rows)} rows merged "
        f"({len(requeues)} requeue(s); event log: {scheduler.events_path})"
    )
    if args.output is not None:
        merged.save(args.output)
        print(f"wrote {args.output}")
    if args.metrics is not None:
        names = [name.strip() for name in args.metrics.split(",") if name.strip()]
        print(merged.to_markdown(names))
    return 0


def _events(args: argparse.Namespace) -> int:
    for event in read_scheduler_events(args.checkpoint_dir, kind=args.kind):
        print(json.dumps(event, sort_keys=True))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _run(args)
    return _events(args)


if __name__ == "__main__":
    sys.exit(main())
