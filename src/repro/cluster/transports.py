"""Worker transports: how the scheduler launches and observes shard workers.

The scheduler (:mod:`repro.cluster.scheduler`) is transport-agnostic: it
talks to any object satisfying the small :class:`WorkerTransport` /
:class:`WorkerHandle` protocols, so a remote transport (SSH fleet, k8s
jobs, a cloud batch API) can slot in later without touching the
scheduling logic.  The first — and reference — transport is
:class:`LocalProcessFleet`: each shard runs as one OS process executing
``ShardBackend(shard_index, shard_count, checkpoint_dir)``, emitting a
heartbeat line (rows committed so far) to an append-only stream in the
checkpoint directory after every variant.

Liveness is *observed progress*, not trust: the scheduler polls the
heartbeat stream and the process exit code; a worker that dies (or goes
silent past the heartbeat timeout) is killed and its shard requeued.
The checkpoint-dedup machinery makes that safe — a retried shard skips
every row already committed, so a crash-then-retry never duplicates or
diverges.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
from pathlib import Path
from typing import Any, Optional, Protocol, runtime_checkable

from ..experiments.backends import ShardBackend, ShardProgress
from ..experiments.design import Experiment
from ..io.eventlog import EventLogWriter, last_event
from ..io.shards import shard_filename
from .faults import FaultInjector

__all__ = [
    "ShardAssignment",
    "WorkerHandle",
    "WorkerTransport",
    "LocalProcessFleet",
    "LocalWorkerHandle",
    "heartbeat_filename",
    "run_assignment",
]


def heartbeat_filename(shard_index: int) -> str:
    """Name of one shard's heartbeat stream (a reserved telemetry name —
    see :data:`repro.io.shards.TELEMETRY_PREFIXES`)."""
    return f"heartbeat-{shard_index:04d}.jsonl"


@dataclasses.dataclass(frozen=True)
class ShardAssignment:
    """One unit of scheduler → transport work: run one shard, attempt N.

    Picklable by construction (frozen dataclasses of plain data all the
    way down), so any transport can ship it to another process or host.
    The heartbeat stream lives in the checkpoint directory under this
    shard's reserved telemetry name.
    """

    experiment: Experiment
    shard_index: int
    shard_count: int
    checkpoint_dir: str
    attempt: int = 1
    fault: Optional[FaultInjector] = None

    @property
    def heartbeat_path(self) -> Path:
        return Path(self.checkpoint_dir) / heartbeat_filename(self.shard_index)

    @property
    def shard_log_path(self) -> Path:
        return Path(self.checkpoint_dir) / shard_filename(
            self.shard_index, self.shard_count
        )


@runtime_checkable
class WorkerHandle(Protocol):
    """The scheduler's view of one launched worker."""

    def poll(self) -> Optional[int]:
        """Exit code once the worker has exited, ``None`` while running."""
        ...

    def rows_committed(self) -> Optional[int]:
        """Rows the worker last reported durable, ``None`` before any
        heartbeat.  Must be monotone non-decreasing."""
        ...

    def terminate(self) -> None:
        """Hard-stop the worker; must be idempotent and unconditional."""
        ...


@runtime_checkable
class WorkerTransport(Protocol):
    """A strategy for running shard assignments somewhere."""

    def launch(self, assignment: ShardAssignment) -> WorkerHandle: ...


def run_assignment(assignment: ShardAssignment) -> None:
    """Execute one shard assignment in the current process (worker body).

    Emits a heartbeat before the first variant and after each one —
    ``rows`` is the shard's committed-row count, the monotone progress
    signal the scheduler watches.  An armed :class:`FaultInjector`
    intercepts the same per-variant hook to kill the process, suppress
    heartbeats, or linger after completion.
    """
    fault = assignment.fault
    armed = fault is not None and fault.applies_to(
        assignment.shard_index, assignment.attempt
    )
    heartbeat = EventLogWriter(assignment.heartbeat_path)

    def on_progress(progress: ShardProgress) -> None:
        if armed and fault.should_kill(progress.rows_appended):
            heartbeat.close()
            fault.kill_now(assignment.shard_log_path)
        if armed and fault.should_drop_heartbeat(progress.rows_appended):
            return
        heartbeat.append(
            {
                "event": "heartbeat",
                "shard": assignment.shard_index,
                "attempt": assignment.attempt,
                "pid": os.getpid(),
                "rows": progress.rows_committed,
                "variants_done": progress.variants_done,
                "variants_total": progress.variants_total,
            }
        )

    backend = ShardBackend(
        shard_index=assignment.shard_index,
        shard_count=assignment.shard_count,
        checkpoint_dir=assignment.checkpoint_dir,
        on_progress=on_progress,
    )
    try:
        backend.execute(assignment.experiment)
    finally:
        heartbeat.close()
    if armed:
        fault.linger()


@dataclasses.dataclass
class LocalWorkerHandle:
    """Handle over one local worker process."""

    process: multiprocessing.process.BaseProcess
    assignment: ShardAssignment

    def poll(self) -> Optional[int]:
        return self.process.exitcode

    def rows_committed(self) -> Optional[int]:
        beat = last_event(self.assignment.heartbeat_path, kind="heartbeat")
        if beat is None:
            return None
        return int(beat["rows"])

    def terminate(self) -> None:
        # SIGKILL, not SIGTERM: a hung worker is by definition not
        # cooperating, and the append-only logs make hard kills safe.
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5.0)


@dataclasses.dataclass
class LocalProcessFleet:
    """Run shard workers as local OS processes.

    ``max_workers`` is the fleet's concurrency capacity (``None`` — the
    machine's core count); the scheduler consults it when it has no
    explicit cap of its own.  ``mp_context`` picks the multiprocessing
    start method (``None`` — the platform default).
    """

    max_workers: Optional[int] = None
    mp_context: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")

    def launch(self, assignment: ShardAssignment) -> LocalWorkerHandle:
        context = multiprocessing.get_context(self.mp_context)
        process = context.Process(
            target=run_assignment,
            args=(assignment,),
            name=(
                f"repro-shard-{assignment.shard_index:04d}"
                f"-attempt-{assignment.attempt}"
            ),
            daemon=True,
        )
        process.start()
        return LocalWorkerHandle(process=process, assignment=assignment)
