"""Fault-tolerant work-queue scheduler for sharded experiment sweeps.

PR 5 defined the per-shard execution contract — deterministic
:class:`~repro.experiments.backends.ShardBackend` slices, append-only
hash-validated JSONL checkpoints, bit-identical merge — but dispatch
still happened by hand.  :class:`ShardScheduler` is the coordinator: it
enqueues one work item per shard, dispatches items to a pluggable
:class:`~repro.cluster.transports.WorkerTransport` (the local process
fleet first), watches each worker's heartbeat stream (progress = rows
appended to its shard log), and survives worker death:

* a worker that **exits non-zero** or goes **silent** past
  ``heartbeat_timeout`` is killed and its shard requeued with capped
  exponential backoff plus deterministic jitter;
* the retry runs against the existing checkpoint-dedup machinery, so it
  skips every row already committed — a crash-then-retry never
  duplicates or diverges, and the merged set stays bit-identical to a
  :class:`~repro.experiments.backends.SerialBackend` run
  (modulo :data:`~repro.experiments.results.WALL_CLOCK_METRICS`);
* every transition is appended to the structured scheduler event log
  (:mod:`repro.cluster.events`), so a crash at any instant leaves a
  recoverable, observable prefix — the discipline of the secure-logging
  literature in PAPERS.md.

On completion the scheduler auto-merges all shard logs into the
canonical :class:`~repro.experiments.results.ResultSet` by running the
resume path over the checkpoint directory — which doubles as a safety
net: any row a "completed" worker somehow failed to persist is computed
inline rather than lost.

Time is injectable (``clock`` / ``sleep``), so the requeue/backoff logic
is unit-testable against a fake clock with a scripted fake transport.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..core.exceptions import ClusterError
from ..experiments.backends import resume_experiment, shard_plans
from ..experiments.design import Experiment
from ..experiments.results import ResultSet
from .events import SchedulerEventLog, scheduler_events_path
from .faults import FaultInjector
from .transports import LocalProcessFleet, ShardAssignment, WorkerTransport

__all__ = ["ShardScheduler", "backoff_delay"]


def backoff_delay(
    base: float,
    cap: float,
    jitter: float,
    seed: int,
    shard_index: int,
    failures: int,
) -> float:
    """Requeue delay after the ``failures``-th failure of one shard.

    Exponential in the failure count and capped *before* jitter:
    ``min(cap, base * 2**(failures - 1))``, then stretched by a
    deterministic jitter factor in ``[1, 1 + jitter]`` drawn from
    ``SeedSequence([seed, shard_index, failures])`` — every retry of
    every shard gets a different, but exactly reproducible, delay
    (jitter decorrelates retry storms without sacrificing replayability).
    """
    delay = min(cap, base * (2.0 ** (failures - 1)))
    if jitter > 0.0 and delay > 0.0:
        # REP001 exemplar: a generator outside simulation/rng.py is sound
        # exactly because its seed is an explicit SeedSequence over the
        # (seed, shard, failures) coordinates — every retry's jitter is
        # replayable with no ambient state.
        rng = np.random.default_rng(
            np.random.SeedSequence([seed, shard_index, failures])
        )
        delay *= 1.0 + jitter * float(rng.random())
    return delay


class _QueuedShard:
    """One shard waiting (possibly under backoff) for a worker."""

    __slots__ = ("shard_index", "attempt", "ready_at")

    def __init__(self, shard_index: int, attempt: int, ready_at: float) -> None:
        self.shard_index = shard_index
        self.attempt = attempt
        self.ready_at = ready_at


class _RunningShard:
    """Scheduler-side state of one launched worker."""

    __slots__ = ("shard_index", "attempt", "handle", "last_rows", "last_advance")

    def __init__(self, shard_index: int, attempt: int, handle, now: float) -> None:
        self.shard_index = shard_index
        self.attempt = attempt
        self.handle = handle
        self.last_rows: Optional[int] = None
        self.last_advance = now


class ShardScheduler:
    """Dispatch an experiment's shards to workers until all complete.

    Parameters
    ----------
    experiment / shard_count / checkpoint_dir:
        What to run, how to partition it, and where the shard logs, the
        heartbeat streams, and the scheduler event log live.
    transport:
        The :class:`WorkerTransport` that actually runs assignments;
        default — a :class:`LocalProcessFleet`.
    max_workers:
        Concurrent worker cap; default — the transport's ``max_workers``
        if it declares one, else the machine's core count.
    heartbeat_timeout:
        Seconds without observed progress (a fresh heartbeat with a
        higher committed-row count) before a worker is declared hung,
        killed, and its shard requeued.
    poll_interval:
        Scheduler poll cadence, seconds.
    backoff_base / backoff_cap / backoff_jitter:
        Requeue backoff: delay after the f-th failure is
        ``min(cap, base * 2**(f-1))`` stretched by a deterministic
        jitter factor in ``[1, 1 + jitter]`` (see :func:`backoff_delay`).
    max_attempts:
        Attempts allowed per shard before the run aborts with
        :class:`~repro.core.exceptions.ClusterError`.
    fault_injector:
        Optional :class:`~repro.cluster.faults.FaultInjector` forwarded
        to every assignment (tests and smoke drills only).
    clock / sleep:
        Injectable time source and sleeper (monotonic seconds); the
        fake-clock unit tests drive the whole requeue/backoff state
        machine synthetically.
    """

    def __init__(
        self,
        experiment: Experiment,
        shard_count: int,
        checkpoint_dir: str,
        *,
        transport: Optional[WorkerTransport] = None,
        max_workers: Optional[int] = None,
        heartbeat_timeout: float = 60.0,
        poll_interval: float = 0.05,
        backoff_base: float = 0.25,
        backoff_cap: float = 8.0,
        backoff_jitter: float = 0.1,
        max_attempts: int = 4,
        fault_injector: Optional[FaultInjector] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if shard_count < 1:
            raise ClusterError(f"shard_count must be >= 1, got {shard_count}")
        if heartbeat_timeout <= 0.0:
            raise ClusterError("heartbeat_timeout must be positive")
        if poll_interval <= 0.0:
            raise ClusterError("poll_interval must be positive")
        if backoff_base < 0.0 or backoff_cap < 0.0 or backoff_jitter < 0.0:
            raise ClusterError("backoff settings must be non-negative")
        if max_attempts < 1:
            raise ClusterError("max_attempts must be >= 1")
        self.experiment = experiment
        self.shard_count = shard_count
        self.checkpoint_dir = Path(checkpoint_dir)
        self.transport = transport if transport is not None else LocalProcessFleet()
        resolved = max_workers
        if resolved is None:
            resolved = getattr(self.transport, "max_workers", None)
        if resolved is None:
            resolved = os.cpu_count() or 1
        if resolved < 1:
            raise ClusterError(f"max_workers must be >= 1, got {resolved}")
        self.max_workers = resolved
        self.heartbeat_timeout = heartbeat_timeout
        self.poll_interval = poll_interval
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.backoff_jitter = backoff_jitter
        self.max_attempts = max_attempts
        self.fault_injector = fault_injector
        self._clock = clock
        self._sleep = sleep
        self.events_path = scheduler_events_path(self.checkpoint_dir)

    # -- the scheduling loop -----------------------------------------------------

    def run(self) -> ResultSet:
        """Dispatch every shard to completion, then merge and return the
        canonical result set."""
        # Validates experiment/shard_count eagerly (and documents the
        # partition in the event log's queued records).
        plans = shard_plans(self.experiment, self.shard_count)
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        events = SchedulerEventLog(self.checkpoint_dir, clock=self._clock)
        pending: List[_QueuedShard] = []
        running: List[_RunningShard] = []
        try:
            now = self._clock()
            for plan in plans:
                pending.append(_QueuedShard(plan.shard_index, attempt=1, ready_at=now))
                events.emit(
                    "queued",
                    shard=plan.shard_index,
                    attempt=1,
                    delay=0.0,
                    n_work_units=len(plan.runs),
                )
            while pending or running:
                self._launch_ready(pending, running, events)
                self._poll_running(pending, running, events)
                wait = self._next_wait(pending, running)
                if wait > 0.0:
                    self._sleep(wait)
        except BaseException:
            for entry in running:
                entry.handle.terminate()
            raise
        finally:
            events.close()

        # All shards reported complete: assemble the canonical set from
        # the checkpoint directory.  The resume path re-validates every
        # header and row hash, and computes inline anything a worker
        # failed to persist — a final safety net under the merge.
        merged = resume_experiment(self.experiment, str(self.checkpoint_dir))
        with SchedulerEventLog(self.checkpoint_dir, clock=self._clock) as events:
            events.emit("merged", rows=len(merged.rows), shards=self.shard_count)
        return merged

    def _launch_ready(
        self,
        pending: List[_QueuedShard],
        running: List[_RunningShard],
        events: SchedulerEventLog,
    ) -> None:
        now = self._clock()
        ready = sorted(
            (item for item in pending if item.ready_at <= now),
            key=lambda item: (item.ready_at, item.shard_index),
        )
        for item in ready:
            if len(running) >= self.max_workers:
                break
            pending.remove(item)
            assignment = ShardAssignment(
                experiment=self.experiment,
                shard_index=item.shard_index,
                shard_count=self.shard_count,
                checkpoint_dir=str(self.checkpoint_dir),
                attempt=item.attempt,
                fault=self.fault_injector,
            )
            handle = self.transport.launch(assignment)
            running.append(
                _RunningShard(item.shard_index, item.attempt, handle, self._clock())
            )
            events.emit("started", shard=item.shard_index, attempt=item.attempt)

    def _poll_running(
        self,
        pending: List[_QueuedShard],
        running: List[_RunningShard],
        events: SchedulerEventLog,
    ) -> None:
        for entry in list(running):
            exit_code = entry.handle.poll()
            if exit_code is not None:
                running.remove(entry)
                if exit_code == 0:
                    events.emit(
                        "completed",
                        shard=entry.shard_index,
                        attempt=entry.attempt,
                        rows=entry.handle.rows_committed(),
                    )
                else:
                    events.emit(
                        "worker-failed",
                        shard=entry.shard_index,
                        attempt=entry.attempt,
                        exit_code=exit_code,
                    )
                    self._requeue(entry, pending, running, events)
                continue
            rows = entry.handle.rows_committed()
            now = self._clock()
            if rows is not None and (entry.last_rows is None or rows > entry.last_rows):
                entry.last_rows = rows
                entry.last_advance = now
                events.emit(
                    "heartbeat",
                    shard=entry.shard_index,
                    attempt=entry.attempt,
                    rows=rows,
                )
            elif now - entry.last_advance > self.heartbeat_timeout:
                entry.handle.terminate()
                running.remove(entry)
                events.emit(
                    "timeout",
                    shard=entry.shard_index,
                    attempt=entry.attempt,
                    rows=entry.last_rows,
                    silent_for=round(now - entry.last_advance, 6),
                )
                self._requeue(entry, pending, running, events)

    def _requeue(
        self,
        entry: _RunningShard,
        pending: List[_QueuedShard],
        running: List[_RunningShard],
        events: SchedulerEventLog,
    ) -> None:
        failures = entry.attempt
        next_attempt = entry.attempt + 1
        if next_attempt > self.max_attempts:
            events.emit(
                "exhausted",
                shard=entry.shard_index,
                attempts=entry.attempt,
            )
            for other in running:
                other.handle.terminate()
            running.clear()
            raise ClusterError(
                f"shard {entry.shard_index} failed {entry.attempt} times "
                f"(max_attempts={self.max_attempts}); see event log at "
                f"{str(self.events_path)!r}"
            )
        delay = backoff_delay(
            self.backoff_base,
            self.backoff_cap,
            self.backoff_jitter,
            self.experiment.seed,
            entry.shard_index,
            failures,
        )
        pending.append(
            _QueuedShard(
                entry.shard_index,
                attempt=next_attempt,
                ready_at=self._clock() + delay,
            )
        )
        events.emit(
            "requeued",
            shard=entry.shard_index,
            attempt=next_attempt,
            delay=round(delay, 6),
        )

    def _next_wait(
        self, pending: List[_QueuedShard], running: List[_RunningShard]
    ) -> float:
        """How long to sleep before the next scheduling pass.

        With workers in flight: the poll cadence.  With only backed-off
        items pending: exactly until the earliest becomes ready (which a
        fake clock advances in one step, making unit-test timelines
        deterministic and real idle waits cheap).
        """
        if not pending and not running:
            return 0.0
        if running:
            return self.poll_interval
        now = self._clock()
        earliest = min(item.ready_at for item in pending)
        return max(earliest - now, 0.0)
