"""Fault-tolerant cluster scheduling for sharded experiment sweeps.

The coordinator layer over the per-shard execution contract of
:mod:`repro.experiments.backends`: a work-queue scheduler
(:class:`ShardScheduler`) that dispatches one work item per shard to a
pluggable worker transport (:class:`LocalProcessFleet` first), watches
heartbeats (progress = rows appended to each shard's append-only log),
requeues dead or silent shards with capped exponential backoff +
deterministic jitter, and auto-merges the shard logs into the canonical
:class:`~repro.experiments.results.ResultSet` — bit-identical, modulo
:data:`~repro.experiments.results.WALL_CLOCK_METRICS`, to a serial run
of the same experiment, no matter how many workers crashed along the
way.

>>> from repro.cluster import ShardScheduler, LocalProcessFleet
>>> scheduler = ShardScheduler(
...     experiment, shard_count=4, checkpoint_dir="ckpt",
...     transport=LocalProcessFleet(max_workers=2),
... )
>>> merged = scheduler.run()     # survives worker death; merged == serial

Every state transition is appended to a structured JSONL event log
(:mod:`repro.cluster.events`) alongside the shard logs, and the
deterministic :class:`FaultInjector` (:mod:`repro.cluster.faults`) lets
tests — and shell drills via ``python -m repro.cluster run --inject-*``
— crash workers at exact, reproducible points.
"""

from ..core.exceptions import ClusterError
from .events import (
    EVENT_KINDS,
    EVENTS_FILENAME,
    SchedulerEventLog,
    read_scheduler_events,
    scheduler_events_path,
)
from .faults import FAULT_KILL_EXIT_CODE, FaultInjector
from .scheduler import ShardScheduler, backoff_delay
from .transports import (
    LocalProcessFleet,
    LocalWorkerHandle,
    ShardAssignment,
    WorkerHandle,
    WorkerTransport,
    heartbeat_filename,
    run_assignment,
)

__all__ = [
    "ShardScheduler",
    "backoff_delay",
    "ClusterError",
    "WorkerTransport",
    "WorkerHandle",
    "LocalProcessFleet",
    "LocalWorkerHandle",
    "ShardAssignment",
    "heartbeat_filename",
    "run_assignment",
    "FaultInjector",
    "FAULT_KILL_EXIT_CODE",
    "SchedulerEventLog",
    "EVENT_KINDS",
    "EVENTS_FILENAME",
    "scheduler_events_path",
    "read_scheduler_events",
]
