"""Append-only JSONL event streams for scheduler observability.

The cluster layer (:mod:`repro.cluster`) records every state transition —
shard queued, worker started, heartbeat observed, timeout, requeue,
completion — as one JSON line appended to an event log that lives
alongside the shard checkpoints.  The discipline matches the shard logs
themselves (:mod:`repro.io.shards`) and the crash-tolerance model of the
secure-logging literature in PAPERS.md: records are immutable once
written, a crash at any instant leaves a recoverable prefix, and a torn
*final* line (killed mid-append) is treated as never-written rather than
as corruption.

Two kinds of streams use this module:

* the scheduler event log (``scheduler-events.jsonl``), written by the
  coordinating process, and
* per-shard heartbeat streams (``heartbeat-NNNN.jsonl``), appended by the
  worker processes and polled by the scheduler as its liveness signal.

Both are *telemetry*, not checkpoints — :func:`repro.io.shards.load_checkpoint`
skips them by their reserved name prefixes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from ..core.exceptions import SerializationError

__all__ = [
    "EVENTLOG_SUFFIX",
    "EventLogWriter",
    "read_events",
    "last_event",
]

PathLike = Union[str, Path]

#: Event streams share the shard logs' JSONL suffix (and directory); the
#: reserved name prefixes in :mod:`repro.io.shards` keep them apart.
EVENTLOG_SUFFIX = ".jsonl"


class EventLogWriter:
    """Append events to a JSONL stream, one flushed line per event.

    The file is opened lazily on the first :meth:`append`.  Opening an
    existing stream truncates a torn final line (the unfinished write of
    a process killed mid-append — never a committed event) and resumes
    the ``seq`` counter after the last committed record, so a log
    appended across several scheduler invocations stays one strictly
    ordered stream.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._handle = None
        self._seq = 0

    def _open(self) -> None:
        committed = 0
        if self.path.exists():
            content = self.path.read_bytes()
            committed = content.rfind(b"\n") + 1  # 0 when no full line survives
            if committed < len(content):
                with open(self.path, "r+b") as handle:
                    handle.truncate(committed)
            self._seq = content.count(b"\n", 0, committed)
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")

    def append(self, event: Mapping[str, Any]) -> Dict[str, Any]:
        """Commit one event (stamped with the next ``seq``) and return it."""
        if self._handle is None:
            self._open()
        record = {"seq": self._seq, **dict(event)}
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        self._seq += 1
        return record

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventLogWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def read_events(path: PathLike) -> List[Dict[str, Any]]:
    """Every committed event of a stream, in append order.

    A missing file reads as an empty stream (the writer is lazy, so a
    scheduler that never got to emit anything leaves no file).  A torn
    final line — no terminating newline, the signature of a process
    killed mid-append — is skipped; any *committed* malformed line raises
    :class:`SerializationError`, because committed records are immutable
    and a bad one means tampering or disk corruption.
    """
    path = Path(path)
    if not path.exists():
        return []
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()
    torn_tail = bool(text) and not text.endswith("\n")
    events: List[Dict[str, Any]] = []
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            if number == len(lines) and torn_tail:
                break  # torn final append — the event was never committed
            raise SerializationError(
                f"event log {str(path)!r} line {number} is malformed: {error}"
            ) from error
        if not isinstance(payload, dict):
            raise SerializationError(
                f"event log {str(path)!r} line {number} is not an event object"
            )
        events.append(payload)
    return events


def last_event(
    path: PathLike, kind: Optional[str] = None
) -> Optional[Dict[str, Any]]:
    """The most recent committed event (optionally of one ``event`` kind)."""
    events = read_events(path)
    if kind is not None:
        events = [event for event in events if event.get("event") == kind]
    return events[-1] if events else None
