"""Append-only JSONL shard files for sharded and resumable experiment runs.

One shard file holds one shard's completed result rows: a single header
line carrying the shard's provenance (experiment name, seed, shard
index/count, total variant count, format version) followed by one
result-row object per line, in completion order.  Rows are appended as
each variant finishes, and nothing is ever rewritten — an interrupted run
simply stops mid-file, and re-invoking the shard (or
:meth:`Experiment.resume`) reads the completed rows back and skips them.
The merge-safety discipline follows the append-only audited-log designs
of the secure-logging literature (see PAPERS.md): records are immutable
once written, identity is content-based, and reassembly validates rather
than trusts.

Parsing re-validates each row's recorded variant hash (see
:func:`repro.io.experiments_io.result_row_from_dict`), so a tampered or
corrupted shard fails loudly instead of merging silently.  A truncated
*final* line — the signature of a run killed mid-append — is tolerated
and treated as not-yet-written; malformed content anywhere else raises
:class:`~repro.core.exceptions.SerializationError`.

Like the rest of :mod:`repro.io`, this module stays import-light: the
experiment classes are only touched lazily through
:mod:`repro.io.experiments_io` when rows are parsed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..core.exceptions import SerializationError
from .experiments_io import result_row_from_dict, result_row_to_dict

__all__ = [
    "SHARD_FORMAT_VERSION",
    "RESUME_FILENAME",
    "TELEMETRY_PREFIXES",
    "shard_filename",
    "ShardLogWriter",
    "append_shard_rows",
    "read_shard",
    "load_checkpoint",
]

#: Format version written into every shard header; bumped on layout changes.
SHARD_FORMAT_VERSION = 1

#: File that :meth:`Experiment.resume` appends rows it had to recompute to.
RESUME_FILENAME = "resume.jsonl"

#: JSONL files under these name prefixes are telemetry (scheduler event
#: logs, heartbeat streams, service job ledgers and cache streams — see
#: :mod:`repro.io.eventlog`, :mod:`repro.cluster`, and
#: :mod:`repro.service`) living alongside the shard logs; they are never
#: row checkpoints and :func:`load_checkpoint` skips them.
TELEMETRY_PREFIXES = ("scheduler-", "heartbeat-", "service-")

PathLike = Union[str, Path]


def shard_filename(shard_index: int, shard_count: int) -> str:
    """Canonical file name of one shard of a sharded run."""
    return f"shard-{shard_index:04d}-of-{shard_count:04d}.jsonl"


class ShardLogWriter:
    """Append rows to one shard file across a whole run, opening it once.

    The historical :func:`append_shard_rows` re-read the entire file on
    *every* append to find (and truncate) a torn final line — O(file) per
    variant, O(rows²) per run, which a scheduler retrying shards pays on
    every attempt.  The writer does that recovery scan exactly once, when
    the file is first opened, and every subsequent :meth:`append` is a
    pure O(rows-written) line append + flush.  Committed records are
    still never rewritten: the one truncation removes only an
    unterminated fragment, which was never a committed record.

    The ``header`` mapping is only consulted when the file holds no
    committed content yet; appends to a populated file trust its recorded
    header.  The handle is opened lazily on the first append, so a run
    whose rows are all served from the checkpoint never creates a file.
    """

    def __init__(self, path: PathLike, header: Mapping[str, Any]) -> None:
        self.path = Path(path)
        self._header = dict(header)
        self._handle = None

    def _open(self) -> None:
        committed = 0
        if self.path.exists():
            content = self.path.read_bytes()
            committed = content.rfind(b"\n") + 1  # 0 when no full line survives
            if committed < len(content):
                with open(self.path, "r+b") as handle:
                    handle.truncate(committed)
        self._handle = open(self.path, "a", encoding="utf-8")
        if committed == 0:
            self._write_line(
                json.dumps(
                    {
                        "kind": "header",
                        "format_version": SHARD_FORMAT_VERSION,
                        **self._header,
                    },
                    sort_keys=True,
                )
            )

    def _write_line(self, line: str) -> None:
        self._handle.write(line + "\n")

    def append(self, rows: Iterable[Any]) -> None:
        """Commit rows (one JSON line each), flushed so a crash loses at
        most the line being written."""
        if self._handle is None:
            self._open()
        for row in rows:
            self._write_line(
                json.dumps(
                    {"kind": "row", "row": result_row_to_dict(row)}, sort_keys=True
                )
            )
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ShardLogWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def append_shard_rows(
    path: PathLike, rows: Iterable[Any], header: Mapping[str, Any]
) -> Path:
    """Append result rows to a shard file, creating it (header first) if new.

    One-shot convenience over :class:`ShardLogWriter` — callers appending
    repeatedly across a run should hold a writer instead, which amortizes
    the torn-tail recovery scan to one per run.
    """
    path = Path(path)
    with ShardLogWriter(path, header) as writer:
        writer.append(rows)
    return path


def read_shard(path: PathLike) -> Tuple[Optional[Dict[str, Any]], List[Any]]:
    """Parse one shard file into its ``(header, rows)``.

    A truncated *final* line (run interrupted mid-append, recognizable
    by the missing line terminator) is treated as not-yet-written: a
    torn row line is skipped, and a torn header — crash during the very
    first append, leaving a single unterminated line — yields
    ``(None, [])``, meaning "no committed content".  Any malformed
    *committed* line (newline-terminated, the signature of tampering or
    disk corruption rather than a torn write), a missing header, or an
    unknown format version raises :class:`SerializationError`.  Row
    parsing re-validates the recorded variant hashes.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()
    if not lines:
        # A 0-byte file is the narrowest torn first write: the file was
        # created but the header never flushed.  Same verdict as a torn
        # header — nothing was ever committed.
        return None, []
    # A committed record always ends in a newline (append_shard_rows writes
    # line + "\n"); only an unterminated final line can be a torn write.
    torn_tail = not text.endswith("\n")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as error:
        if len(lines) == 1 and torn_tail:
            return None, []  # torn header — nothing was ever committed
        raise SerializationError(
            f"shard file {str(path)!r} has a malformed header line: {error}"
        ) from error
    if not isinstance(header, dict) or header.get("kind") != "header":
        raise SerializationError(
            f"shard file {str(path)!r} does not start with a header record"
        )
    version = header.get("format_version")
    if version != SHARD_FORMAT_VERSION:
        raise SerializationError(
            f"shard file {str(path)!r} has format version {version!r}; "
            f"this reader understands {SHARD_FORMAT_VERSION}"
        )
    rows: List[Any] = []
    for number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            if number == len(lines) and torn_tail:
                break  # torn final append — the row was never completed
            raise SerializationError(
                f"shard file {str(path)!r} line {number} is malformed: {error}"
            ) from error
        if not isinstance(payload, dict) or payload.get("kind") != "row" or "row" not in payload:
            raise SerializationError(
                f"shard file {str(path)!r} line {number} is not a row record"
            )
        rows.append(result_row_from_dict(payload["row"]))
    return header, rows


def load_checkpoint(
    directory: PathLike,
) -> List[Tuple[Path, Optional[Dict[str, Any]], List[Any]]]:
    """Every shard file in a checkpoint directory, as ``(path, header, rows)``.

    Files are visited in sorted name order, so reassembly is
    deterministic.  A file whose very first write was torn (see
    :func:`read_shard`) appears with a ``None`` header and no rows.
    Scheduler telemetry streams sharing the directory — names under
    :data:`TELEMETRY_PREFIXES` — are not checkpoints and are skipped.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise SerializationError(
            f"checkpoint directory {str(directory)!r} does not exist"
        )
    entries: List[Tuple[Path, Optional[Dict[str, Any]], List[Any]]] = []
    for path in sorted(directory.glob("*.jsonl")):
        if path.name.startswith(TELEMETRY_PREFIXES):
            continue
        header, rows = read_shard(path)
        entries.append((path, header, rows))
    return entries
