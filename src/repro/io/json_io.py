"""JSON serialization of the framework model objects.

Secure-system models are meant to be shared, versioned, and diffed; this
module round-trips the core model objects (communications, environments,
receivers, task designs, tasks, systems) through plain JSON-compatible
dictionaries.  Enumerations are stored by value, nested dataclasses by
structure, so the files are readable and stable.

Analysis results (failure inventories, mitigation plans) serialize one-way
(:func:`failure_to_dict`, :func:`analysis_to_dict`) for reporting; they are
derived artifacts and are recomputed rather than parsed back.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional

from ..core.analysis import TaskAnalysis
from ..core.behavior import TaskDesign
from ..core.communication import (
    Communication,
    CommunicationType,
    DeliveryChannel,
    HazardFrequency,
    HazardProfile,
    HazardSeverity,
)
from ..core.exceptions import ModelError, SerializationError
from ..core.failure import FailureMode
from ..core.impediments import (
    Environment,
    EnvironmentalStimulus,
    Interference,
    InterferenceSource,
    StimulusKind,
)
from ..core.receiver import (
    AttitudesBeliefs,
    Capabilities,
    Demographics,
    EducationLevel,
    HumanReceiver,
    Intentions,
    KnowledgeExperience,
    Motivation,
    PersonalVariables,
)
from ..core.task import AutomationProfile, HumanSecurityTask, SecureSystem
from ..simulation.metrics import SimulationResult

__all__ = [
    "communication_to_dict",
    "communication_from_dict",
    "environment_to_dict",
    "environment_from_dict",
    "receiver_to_dict",
    "receiver_from_dict",
    "task_to_dict",
    "task_from_dict",
    "system_to_dict",
    "system_from_dict",
    "failure_to_dict",
    "analysis_to_dict",
    "simulation_result_to_dict",
    "dumps_system",
    "loads_system",
    "save_system",
    "load_system",
]


# ---------------------------------------------------------------------------
# Communication
# ---------------------------------------------------------------------------


def communication_to_dict(communication: Communication) -> Dict[str, Any]:
    """Serialize a communication to a JSON-compatible dictionary."""
    return {
        "name": communication.name,
        "comm_type": communication.comm_type.value,
        "activeness": communication.activeness,
        "hazard": {
            "severity": communication.hazard.severity.name,
            "frequency": communication.hazard.frequency.name,
            "user_action_necessity": communication.hazard.user_action_necessity,
            "description": communication.hazard.description,
        },
        "clarity": communication.clarity,
        "includes_instructions": communication.includes_instructions,
        "explains_risk": communication.explains_risk,
        "resembles_low_risk_communications": communication.resembles_low_risk_communications,
        "length_words": communication.length_words,
        "channel": communication.channel.value,
        "conspicuity": communication.conspicuity,
        "allows_override": communication.allows_override,
        "false_positive_rate": communication.false_positive_rate,
        "habituation_exposures": communication.habituation_exposures,
        "description": communication.description,
    }


def communication_from_dict(payload: Dict[str, Any]) -> Communication:
    """Parse a communication from its dictionary form."""
    try:
        hazard_payload = payload.get("hazard", {})
        hazard = HazardProfile(
            severity=HazardSeverity[hazard_payload.get("severity", "MODERATE")],
            frequency=HazardFrequency[hazard_payload.get("frequency", "OCCASIONAL")],
            user_action_necessity=hazard_payload.get("user_action_necessity", 0.5),
            description=hazard_payload.get("description", ""),
        )
        return Communication(
            name=payload["name"],
            comm_type=CommunicationType(payload["comm_type"]),
            activeness=payload.get("activeness", 0.35),
            hazard=hazard,
            clarity=payload.get("clarity", 0.5),
            includes_instructions=payload.get("includes_instructions", False),
            explains_risk=payload.get("explains_risk", False),
            resembles_low_risk_communications=payload.get(
                "resembles_low_risk_communications", False
            ),
            length_words=payload.get("length_words", 30),
            channel=DeliveryChannel(payload.get("channel", DeliveryChannel.DIALOG.value)),
            conspicuity=payload.get("conspicuity", 0.5),
            allows_override=payload.get("allows_override", True),
            false_positive_rate=payload.get("false_positive_rate", 0.0),
            habituation_exposures=payload.get("habituation_exposures", 0),
            description=payload.get("description", ""),
        )
    except (KeyError, ValueError, ModelError) as error:
        raise SerializationError(f"invalid communication payload: {error}") from error


# ---------------------------------------------------------------------------
# Environment
# ---------------------------------------------------------------------------


def environment_to_dict(environment: Environment) -> Dict[str, Any]:
    return {
        "stimuli": [
            {
                "kind": stimulus.kind.value,
                "intensity": stimulus.intensity,
                "description": stimulus.description,
            }
            for stimulus in environment.stimuli
        ],
        "interference": [
            {
                "source": channel.source.value,
                "block_probability": channel.block_probability,
                "degrade_probability": channel.degrade_probability,
                "spoof_probability": channel.spoof_probability,
                "description": channel.description,
            }
            for channel in environment.interference
        ],
        "competing_indicator_count": environment.competing_indicator_count,
        "description": environment.description,
    }


def environment_from_dict(payload: Dict[str, Any]) -> Environment:
    try:
        stimuli = [
            EnvironmentalStimulus(
                kind=StimulusKind(item["kind"]),
                intensity=item.get("intensity", 0.5),
                description=item.get("description", ""),
            )
            for item in payload.get("stimuli", [])
        ]
        interference = [
            Interference(
                source=InterferenceSource(item["source"]),
                block_probability=item.get("block_probability", 0.0),
                degrade_probability=item.get("degrade_probability", 0.0),
                spoof_probability=item.get("spoof_probability", 0.0),
                description=item.get("description", ""),
            )
            for item in payload.get("interference", [])
        ]
        return Environment(
            stimuli=stimuli,
            interference=interference,
            competing_indicator_count=payload.get("competing_indicator_count", 0),
            description=payload.get("description", ""),
        )
    except (KeyError, ValueError, ModelError) as error:
        raise SerializationError(f"invalid environment payload: {error}") from error


# ---------------------------------------------------------------------------
# Receiver
# ---------------------------------------------------------------------------


def receiver_to_dict(receiver: HumanReceiver) -> Dict[str, Any]:
    demographics = receiver.personal_variables.demographics
    knowledge = receiver.personal_variables.knowledge
    attitudes = receiver.intentions.attitudes
    motivation = receiver.intentions.motivation
    capabilities = receiver.capabilities
    return {
        "name": receiver.name,
        "demographics": {
            "age": demographics.age,
            "gender": demographics.gender,
            "culture": demographics.culture,
            "education": demographics.education.value,
            "occupation": demographics.occupation,
            "disabilities": list(demographics.disabilities),
        },
        "knowledge": dataclasses.asdict(knowledge),
        "attitudes": dataclasses.asdict(attitudes),
        "motivation": dataclasses.asdict(motivation),
        "capabilities": dataclasses.asdict(capabilities),
    }


def receiver_from_dict(payload: Dict[str, Any]) -> HumanReceiver:
    try:
        demographics_payload = payload.get("demographics", {})
        demographics = Demographics(
            age=demographics_payload.get("age", 35),
            gender=demographics_payload.get("gender", ""),
            culture=demographics_payload.get("culture", ""),
            education=EducationLevel(
                demographics_payload.get("education", EducationLevel.UNDERGRADUATE.value)
            ),
            occupation=demographics_payload.get("occupation", ""),
            disabilities=tuple(demographics_payload.get("disabilities", ())),
        )
        return HumanReceiver(
            name=payload.get("name", "user"),
            personal_variables=PersonalVariables(
                demographics=demographics,
                knowledge=KnowledgeExperience(**payload.get("knowledge", {})),
            ),
            intentions=Intentions(
                attitudes=AttitudesBeliefs(**payload.get("attitudes", {})),
                motivation=Motivation(**payload.get("motivation", {})),
            ),
            capabilities=Capabilities(**payload.get("capabilities", {})),
        )
    except (KeyError, ValueError, TypeError, ModelError) as error:
        raise SerializationError(f"invalid receiver payload: {error}") from error


# ---------------------------------------------------------------------------
# Task and system
# ---------------------------------------------------------------------------


def task_to_dict(task: HumanSecurityTask) -> Dict[str, Any]:
    return {
        "name": task.name,
        "description": task.description,
        "communication": (
            communication_to_dict(task.communication) if task.communication else None
        ),
        "task_design": dataclasses.asdict(task.task_design),
        "capability_requirements": dataclasses.asdict(task.capability_requirements),
        "environment": environment_to_dict(task.environment),
        "receivers": [receiver_to_dict(receiver) for receiver in task.receivers],
        "security_critical": task.security_critical,
        "automation": dataclasses.asdict(task.automation),
        "desired_action": task.desired_action,
        "failure_consequence": task.failure_consequence,
    }


def task_from_dict(payload: Dict[str, Any]) -> HumanSecurityTask:
    try:
        communication_payload = payload.get("communication")
        return HumanSecurityTask(
            name=payload["name"],
            description=payload.get("description", ""),
            communication=(
                communication_from_dict(communication_payload)
                if communication_payload
                else None
            ),
            task_design=TaskDesign(**payload.get("task_design", {})),
            capability_requirements=Capabilities(**payload.get("capability_requirements", {})),
            environment=environment_from_dict(payload.get("environment", {})),
            receivers=[
                receiver_from_dict(item) for item in payload.get("receivers", [])
            ],
            security_critical=payload.get("security_critical", True),
            automation=AutomationProfile(**payload.get("automation", {})),
            desired_action=payload.get("desired_action", ""),
            failure_consequence=payload.get("failure_consequence", ""),
        )
    except (KeyError, ValueError, TypeError, ModelError) as error:
        raise SerializationError(f"invalid task payload: {error}") from error


def system_to_dict(system: SecureSystem) -> Dict[str, Any]:
    return {
        "name": system.name,
        "description": system.description,
        "tasks": [task_to_dict(task) for task in system.tasks],
    }


def system_from_dict(payload: Dict[str, Any]) -> SecureSystem:
    try:
        return SecureSystem(
            name=payload["name"],
            description=payload.get("description", ""),
            tasks=[task_from_dict(item) for item in payload.get("tasks", [])],
        )
    except (KeyError, ValueError, TypeError, ModelError) as error:
        raise SerializationError(f"invalid system payload: {error}") from error


# ---------------------------------------------------------------------------
# One-way serialization of analysis artifacts
# ---------------------------------------------------------------------------


def failure_to_dict(failure: FailureMode) -> Dict[str, Any]:
    return {
        "identifier": failure.identifier,
        "component": failure.component.value,
        "description": failure.description,
        "severity": failure.severity.name,
        "likelihood": failure.likelihood.name,
        "stage": failure.stage.value if failure.stage else None,
        "behavior_kind": failure.behavior_kind.value if failure.behavior_kind else None,
        "evidence": failure.evidence,
        "task_name": failure.task_name,
        "system_name": failure.system_name,
        "risk_score": failure.risk_score,
    }


def analysis_to_dict(analysis: TaskAnalysis) -> Dict[str, Any]:
    return {
        "task": analysis.task.name,
        "receiver": analysis.receiver.name,
        "success_probability": analysis.success_probability,
        "stage_probabilities": {
            stage.value: probability
            for stage, probability in analysis.stage_probabilities.items()
        },
        "assessments": {
            component.value: {
                "score": assessment.score,
                "rating": assessment.rating.value,
                "findings": list(assessment.findings),
            }
            for component, assessment in analysis.assessments.items()
        },
        "failures": [failure_to_dict(failure) for failure in analysis.failures],
    }


def simulation_result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    """Serialize a simulation result's aggregates and run provenance.

    The provenance block records everything needed to reproduce the run
    exactly: the seed, the execution mode, the batch size (both engine
    modes consume pre-drawn randomness chunked by ``batch_size``), the
    multi-round settings (``rounds`` / ``recovery_rate``) and the
    outcome-coupled habituation weights (``dismiss_weight`` /
    ``heed_weight``; 1.0/1.0 is the delivery-only rule), and the
    decision-stream source (``rng_mode`` — part of stream identity).
    ``chunk_workers`` / ``chunks`` / ``elapsed_seconds`` ride along as
    performance telemetry: how the run was executed and how long it
    took, never what it computed.  Multi-round runs additionally carry
    the per-round headline-rate series (``rounds_series``); runs with
    tracing enabled carry the per-stage funnel (aggregate plus one entry
    per round).  Per-receiver records are derived artifacts and are not
    serialized.
    """
    payload = {
        "task": result.task_name,
        "population": result.population_name,
        "provenance": {
            "seed": result.seed,
            "mode": result.mode,
            "batch_size": result.batch_size,
            "calibration": result.calibration_label,
            "n_receivers": result.n_receivers,
            "rounds": result.rounds,
            "recovery_rate": result.recovery_rate,
            "dismiss_weight": result.dismiss_weight,
            "heed_weight": result.heed_weight,
            "trace": result.funnel is not None,
            "rng_mode": result.rng_mode,
            "chunk_workers": result.chunk_workers,
            "chunks": result.chunks,
            "elapsed_seconds": result.elapsed_seconds,
        },
        "metrics": result.summary(),
        "rounds_series": result.round_summaries(),
        "outcomes": {
            outcome.value: count for outcome, count in result.outcome_counts().items()
        },
        "stage_failures": {
            stage.value: count
            for stage, count in result.stage_failure_counts().items()
        },
    }
    if result.funnel is not None:
        payload["funnel"] = result.funnel.to_dict()
        payload["round_funnels"] = [funnel.to_dict() for funnel in result.round_funnels]
    return payload


# ---------------------------------------------------------------------------
# String / file helpers
# ---------------------------------------------------------------------------


def dumps_system(system: SecureSystem, indent: int = 2) -> str:
    """Serialize a system to a JSON string."""
    return json.dumps(system_to_dict(system), indent=indent, sort_keys=True)


def loads_system(payload: str) -> SecureSystem:
    """Parse a system from a JSON string."""
    try:
        data = json.loads(payload)
    except json.JSONDecodeError as error:
        raise SerializationError(f"invalid JSON: {error}") from error
    return system_from_dict(data)


def save_system(system: SecureSystem, path: str) -> None:
    """Write a system to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_system(system))


def load_system(path: str) -> SecureSystem:
    """Read a system from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads_system(handle.read())
