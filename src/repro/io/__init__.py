"""Serialization and tabular rendering."""

from .json_io import (
    analysis_to_dict,
    communication_from_dict,
    communication_to_dict,
    dumps_system,
    environment_from_dict,
    environment_to_dict,
    failure_to_dict,
    load_system,
    loads_system,
    receiver_from_dict,
    receiver_to_dict,
    save_system,
    system_from_dict,
    system_to_dict,
    task_from_dict,
    task_to_dict,
)
from .tabular import format_cell, render_markdown_table, render_rows, render_table_1

__all__ = [
    "communication_to_dict",
    "communication_from_dict",
    "environment_to_dict",
    "environment_from_dict",
    "receiver_to_dict",
    "receiver_from_dict",
    "task_to_dict",
    "task_from_dict",
    "system_to_dict",
    "system_from_dict",
    "failure_to_dict",
    "analysis_to_dict",
    "dumps_system",
    "loads_system",
    "save_system",
    "load_system",
    "render_table_1",
    "render_rows",
    "render_markdown_table",
    "format_cell",
]
