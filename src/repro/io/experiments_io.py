"""JSON serialization of experiment result sets.

A :class:`~repro.experiments.results.ResultSet` round-trips through plain
JSON so sweeps can be archived, diffed, and fed to the viz layer.  Every
row keeps its full provenance — scenario, validated parameter overrides,
seed, execution mode, batch size, task — which is exactly the tuple
:func:`repro.experiments.reproduce_row` needs to re-run it.  Rows also
record their content-based identity (``variant_hash``) and declaration
position (``variant_index``); parsing recomputes the hash from the
parameters and rejects payloads where the two disagree, so a row whose
provenance was edited after the fact cannot slip into a merge.

Serialization is duck-typed over the row attributes (this module stays
import-light); parsing imports the experiment classes lazily to keep
``repro.io`` free of an import cycle with :mod:`repro.experiments`.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict

from ..core.exceptions import SerializationError

if TYPE_CHECKING:  # lazy at runtime: keeps repro.io import-cycle-free
    from ..experiments.results import ResultRow, ResultSet

__all__ = [
    "result_row_to_dict",
    "result_row_from_dict",
    "resultset_to_dict",
    "resultset_from_dict",
    "dumps_resultset",
    "loads_resultset",
    "save_resultset",
    "load_resultset",
]


def result_row_to_dict(row: Any) -> Dict[str, Any]:
    """Serialize one result row, provenance included."""
    return {
        "experiment": row.experiment,
        "scenario": row.scenario,
        "variant": row.variant,
        "params": dict(row.params),
        "mode": row.mode,
        "metrics": dict(row.metrics),
        "seed": row.seed,
        "n_receivers": row.n_receivers,
        "batch_size": row.batch_size,
        "task": row.task,
        "population": row.population,
        "calibration_label": row.calibration_label,
        "rounds": row.rounds,
        "recovery_rate": row.recovery_rate,
        "dismiss_weight": row.dismiss_weight,
        "heed_weight": row.heed_weight,
        "rng_mode": row.rng_mode,
        "chunk_workers": row.chunk_workers,
        "variant_index": row.variant_index,
        "variant_hash": row.variant_hash,
    }


def result_row_from_dict(payload: Dict[str, Any]) -> "ResultRow":
    """Parse one result row from its dictionary form."""
    from ..experiments.results import ResultRow

    try:
        row = ResultRow(
            experiment=payload["experiment"],
            scenario=payload["scenario"],
            variant=payload["variant"],
            params=dict(payload.get("params", {})),
            mode=payload["mode"],
            metrics=dict(payload.get("metrics", {})),
            seed=payload.get("seed"),
            n_receivers=payload.get("n_receivers"),
            batch_size=payload.get("batch_size"),
            task=payload.get("task"),
            population=payload.get("population"),
            calibration_label=payload.get("calibration_label"),
            rounds=payload.get("rounds"),
            recovery_rate=payload.get("recovery_rate"),
            dismiss_weight=payload.get("dismiss_weight"),
            heed_weight=payload.get("heed_weight"),
            rng_mode=payload.get("rng_mode"),
            chunk_workers=payload.get("chunk_workers"),
            variant_index=payload.get("variant_index"),
        )
    except (KeyError, TypeError) as error:
        raise SerializationError(f"invalid result-row payload: {error}") from error
    recorded_hash = payload.get("variant_hash")
    if recorded_hash is not None and recorded_hash != row.variant_hash:
        raise SerializationError(
            f"result row {row.variant!r} records variant hash {recorded_hash!r} "
            f"but its parameters hash to {row.variant_hash!r}; "
            "the payload's provenance was altered"
        )
    return row


def resultset_to_dict(resultset: Any) -> Dict[str, Any]:
    """Serialize a result set to a JSON-compatible dictionary."""
    return {
        "experiment": resultset.experiment,
        "seed": getattr(resultset, "seed", None),
        "rows": [result_row_to_dict(row) for row in resultset.rows],
    }


def resultset_from_dict(payload: Dict[str, Any]) -> "ResultSet":
    """Parse a result set from its dictionary form."""
    from ..experiments.results import ResultSet

    try:
        return ResultSet(
            experiment=payload["experiment"],
            rows=[result_row_from_dict(row) for row in payload.get("rows", [])],
            seed=payload.get("seed"),
        )
    except (KeyError, TypeError) as error:
        raise SerializationError(f"invalid result-set payload: {error}") from error


def dumps_resultset(resultset: Any, indent: int = 2) -> str:
    """Serialize a result set to a JSON string."""
    return json.dumps(resultset_to_dict(resultset), indent=indent, sort_keys=True)


def loads_resultset(payload: str) -> "ResultSet":
    """Parse a result set from a JSON string."""
    try:
        data = json.loads(payload)
    except json.JSONDecodeError as error:
        raise SerializationError(f"invalid JSON: {error}") from error
    return resultset_from_dict(data)


def save_resultset(resultset: Any, path: str) -> None:
    """Write a result set to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_resultset(resultset))


def load_resultset(path: str) -> "ResultSet":
    """Read a result set from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads_resultset(handle.read())
