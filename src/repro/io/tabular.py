"""Tabular rendering: Table 1 and generic result tables.

Benchmarks and examples print their results as tables; this module keeps
the formatting in one place.  :func:`render_table_1` reproduces the paper's
Table 1 layout (component / questions to ask / factors to consider) from
the structured encoding, and :func:`render_rows` formats arbitrary
list-of-dict rows as aligned plain text or Markdown.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.checklist import TABLE_1, ChecklistEntry
from ..core.components import ComponentGroup
from ..core.exceptions import ReproError

__all__ = ["render_table_1", "render_rows", "render_markdown_table", "format_cell"]


def format_cell(value: Any) -> str:
    """Format a table cell: percentages for small floats, str() otherwise."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if 0.0 <= value <= 1.0:
            return f"{value:.1%}"
        return f"{value:.3g}"
    return str(value)


def render_table_1(group: Optional[ComponentGroup] = None) -> str:
    """Render the Table-1 encoding as Markdown.

    Parameters
    ----------
    group:
        Restrict to one component group (defaults to the full table).
    """
    lines = [
        "| Component | Questions to ask | Factors to consider |",
        "|---|---|---|",
    ]
    for entry in TABLE_1:
        if group is not None and entry.group is not group:
            continue
        questions = "<br>".join(entry.questions)
        factors = ", ".join(entry.factors)
        lines.append(f"| {entry.component.title} | {questions} | {factors} |")
    return "\n".join(lines)


def _column_order(rows: Sequence[Mapping[str, Any]], columns: Optional[Sequence[str]]) -> List[str]:
    if columns is not None:
        return list(columns)
    ordered: List[str] = []
    for row in rows:
        for key in row:
            if key not in ordered:
                ordered.append(key)
    return ordered


def render_markdown_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Render rows (list of dicts) as a Markdown table."""
    if not rows:
        return "(no rows)"
    ordered = _column_order(rows, columns)
    lines = [
        "| " + " | ".join(ordered) + " |",
        "|" + "---|" * len(ordered),
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(format_cell(row.get(column, "")) for column in ordered) + " |"
        )
    return "\n".join(lines)


def render_rows(
    rows: Sequence[Mapping[str, Any]],
    columns: Optional[Sequence[str]] = None,
    padding: int = 2,
) -> str:
    """Render rows as aligned plain text (for terminal output)."""
    if padding < 0:
        raise ReproError("padding must be non-negative")
    if not rows:
        return "(no rows)"
    ordered = _column_order(rows, columns)
    formatted = [
        {column: format_cell(row.get(column, "")) for column in ordered} for row in rows
    ]
    widths = {
        column: max(len(column), *(len(row[column]) for row in formatted))
        for column in ordered
    }
    separator = " " * padding
    lines = [separator.join(column.ljust(widths[column]) for column in ordered)]
    lines.append(separator.join("-" * widths[column] for column in ordered))
    for row in formatted:
        lines.append(separator.join(row[column].ljust(widths[column]) for column in ordered))
    return "\n".join(lines)
