"""Concrete, system-specific mitigations beyond the generic catalog.

The generic strategy-level mitigations live in
:data:`repro.core.mitigation.GENERIC_MITIGATIONS`.  This module adds the
concrete mitigations the paper's case studies and related-work discussion
name explicitly — single sign-on, password vaults, feedback-at-creation
password meters, anti-phishing training games, warning redesign, spoofing-
resistant trusted paths — grouped by the system they apply to, so the
failure-mitigation step can rank them alongside the generic ones.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.components import Component
from ..core.mitigation import GENERIC_MITIGATIONS, Mitigation, MitigationStrategy

__all__ = [
    "PASSWORD_MITIGATIONS",
    "ANTIPHISHING_MITIGATIONS",
    "INDICATOR_MITIGATIONS",
    "DOMAIN_MITIGATIONS",
    "catalog_for",
    "full_catalog",
]


PASSWORD_MITIGATIONS: Tuple[Mitigation, ...] = (
    Mitigation(
        name="single-sign-on",
        strategy=MitigationStrategy.AUTOMATE,
        description=(
            "Deploy single sign-on so employees authenticate once instead of "
            "remembering a distinct password per system."
        ),
        addresses_components=(Component.CAPABILITIES, Component.MOTIVATION),
        effectiveness=0.8,
        cost=0.55,
        residual_risks=(
            "Concentrates risk in a single credential and a single infrastructure component.",
        ),
    ),
    Mitigation(
        name="password-vault",
        strategy=MitigationStrategy.AUTOMATE,
        description=(
            "Provide an approved secure password vault so humans remember one "
            "master secret instead of many policy-compliant passwords."
        ),
        addresses_components=(Component.CAPABILITIES, Component.MOTIVATION),
        effectiveness=0.75,
        cost=0.35,
        residual_risks=(
            "The master secret and the vault itself become high-value targets.",
        ),
    ),
    Mitigation(
        name="password-creation-feedback",
        strategy=MitigationStrategy.SUPPORT,
        description=(
            "Give feedback on password quality and concrete improvement "
            "suggestions at creation time (Conlan & Tarasewich)."
        ),
        addresses_components=(Component.BEHAVIOR, Component.KNOWLEDGE_ACQUISITION),
        effectiveness=0.5,
        cost=0.2,
    ),
    Mitigation(
        name="relax-expiry-requirements",
        strategy=MitigationStrategy.SUPPORT,
        description=(
            "Drop frequent mandatory password changes whose memory cost drives "
            "users to violate the rest of the policy."
        ),
        addresses_components=(Component.CAPABILITIES, Component.MOTIVATION),
        effectiveness=0.45,
        cost=0.15,
        residual_risks=(
            "Long-lived credentials stay valid longer after an undetected compromise.",
        ),
    ),
    Mitigation(
        name="alternative-authentication",
        strategy=MitigationStrategy.AUTOMATE,
        description=(
            "Replace memorized secrets with alternative authentication "
            "mechanisms (tokens, biometrics) where appropriate."
        ),
        addresses_components=(Component.CAPABILITIES,),
        effectiveness=0.7,
        cost=0.7,
        residual_risks=("New capability demands: carrying tokens, enrolling biometrics.",),
    ),
    Mitigation(
        name="explain-password-policy-rationale",
        strategy=MitigationStrategy.TRAIN,
        description=(
            "Training that explains why the password policy exists and what an "
            "attacker can do with a reused or shared password."
        ),
        addresses_components=(Component.MOTIVATION, Component.ATTITUDES_AND_BELIEFS),
        effectiveness=0.35,
        cost=0.2,
    ),
)


ANTIPHISHING_MITIGATIONS: Tuple[Mitigation, ...] = (
    Mitigation(
        name="replace-passive-with-active-warning",
        strategy=MitigationStrategy.SUPPORT,
        description=(
            "Replace the passive in-page warning with an active, blocking "
            "warning that interrupts the primary task."
        ),
        addresses_components=(
            Component.COMMUNICATION,
            Component.ATTENTION_SWITCH,
            Component.ENVIRONMENTAL_STIMULI,
        ),
        effectiveness=0.8,
        cost=0.2,
        residual_risks=("Habituation if the underlying detector produces false positives.",),
    ),
    Mitigation(
        name="distinct-warning-appearance",
        strategy=MitigationStrategy.SUPPORT,
        description=(
            "Make the anti-phishing warning look clearly different from routine "
            "error pages so it is not dismissed reflexively."
        ),
        addresses_components=(Component.COMPREHENSION, Component.ATTITUDES_AND_BELIEFS),
        effectiveness=0.55,
        cost=0.1,
    ),
    Mitigation(
        name="explain-why-site-is-suspicious",
        strategy=MitigationStrategy.SUPPORT,
        description=(
            "Explain in the warning why the site is suspicious and offer a link "
            "to the legitimate site it appears to spoof (Wu et al.'s Web Wallet)."
        ),
        addresses_components=(
            Component.ATTITUDES_AND_BELIEFS,
            Component.KNOWLEDGE_AND_EXPERIENCE,
            Component.COMPREHENSION,
        ),
        effectiveness=0.55,
        cost=0.25,
    ),
    Mitigation(
        name="embedded-antiphishing-training",
        strategy=MitigationStrategy.TRAIN,
        description=(
            "Deliver engaging anti-phishing training (Anti-Phishing Phil, "
            "PhishGuru embedded training) to correct inaccurate mental models."
        ),
        addresses_components=(
            Component.KNOWLEDGE_AND_EXPERIENCE,
            Component.COMPREHENSION,
            Component.KNOWLEDGE_ACQUISITION,
            Component.KNOWLEDGE_RETENTION,
            Component.KNOWLEDGE_TRANSFER,
        ),
        effectiveness=0.5,
        cost=0.35,
    ),
    Mitigation(
        name="block-without-override",
        strategy=MitigationStrategy.AUTOMATE,
        description=(
            "Block access to detected phishing sites outright instead of "
            "offering an override, when the detector's false-positive rate is low."
        ),
        addresses_components=(
            Component.ATTITUDES_AND_BELIEFS,
            Component.MOTIVATION,
            Component.BEHAVIOR,
            Component.COMMUNICATION,
        ),
        effectiveness=0.9,
        cost=0.4,
        residual_risks=(
            "False positives become hard failures; vendors currently insist on an override.",
        ),
    ),
)


INDICATOR_MITIGATIONS: Tuple[Mitigation, ...] = (
    Mitigation(
        name="trusted-path-indicator",
        strategy=MitigationStrategy.SUPPORT,
        description=(
            "Render security indicators in a trusted, unspoofable part of the "
            "interface (trusted paths, synchronized random dynamic boundaries)."
        ),
        addresses_components=(Component.INTERFERENCE,),
        effectiveness=0.7,
        cost=0.5,
    ),
    Mitigation(
        name="enforce-https-automatically",
        strategy=MitigationStrategy.AUTOMATE,
        description=(
            "Enforce protected connections automatically rather than relying on "
            "users to check a lock icon before submitting data."
        ),
        addresses_components=(
            Component.COMMUNICATION,
            Component.ATTENTION_SWITCH,
            Component.CAPABILITIES,
        ),
        effectiveness=0.85,
        cost=0.4,
    ),
)


DOMAIN_MITIGATIONS: Dict[str, Tuple[Mitigation, ...]] = {
    "passwords": PASSWORD_MITIGATIONS,
    "antiphishing": ANTIPHISHING_MITIGATIONS,
    "indicators": INDICATOR_MITIGATIONS,
}


def catalog_for(domain: str) -> List[Mitigation]:
    """Generic catalog plus the mitigations specific to ``domain``.

    ``domain`` is one of ``"passwords"``, ``"antiphishing"``,
    ``"indicators"``; unknown domains get the generic catalog only.
    """
    return list(GENERIC_MITIGATIONS) + list(DOMAIN_MITIGATIONS.get(domain, ()))


def full_catalog() -> List[Mitigation]:
    """Every mitigation known to the library."""
    catalog = list(GENERIC_MITIGATIONS)
    for domain_mitigations in DOMAIN_MITIGATIONS.values():
        catalog.extend(domain_mitigations)
    return catalog
