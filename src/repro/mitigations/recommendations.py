"""End-to-end recommendation assembly for a secure system.

Glues the pieces of the failure-mitigation step together for callers who
want a single call: analyse the system, evaluate automation for each task,
rank mitigations from the right domain catalog, and return one
:class:`SystemRecommendations` object that the reports and examples can
render.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from ..core.analysis import SystemAnalysis, analyze_system
from ..core.mitigation import Mitigation, MitigationPlan, suggest_mitigations
from ..core.task import SecureSystem
from .automation import AutomationEvaluation, evaluate_automation
from .catalog import catalog_for, full_catalog

__all__ = ["TaskRecommendation", "SystemRecommendations", "recommend_for_system"]


@dataclasses.dataclass
class TaskRecommendation:
    """Everything the mitigation step produces for one task."""

    task_name: str
    automation: AutomationEvaluation
    mitigation_plan: MitigationPlan
    success_probability: float

    def top_mitigation(self) -> Optional[Mitigation]:
        mitigations = self.mitigation_plan.ranked_mitigations()
        return mitigations[0] if mitigations else None


@dataclasses.dataclass
class SystemRecommendations:
    """Recommendations for every security-critical task of a system."""

    system_name: str
    analysis: SystemAnalysis
    tasks: Dict[str, TaskRecommendation]

    def recommendation_for(self, task_name: str) -> TaskRecommendation:
        return self.tasks[task_name]

    def ranked_tasks_by_risk(self) -> List[str]:
        """Task names ordered from most to least total identified risk."""
        return sorted(
            self.tasks,
            key=lambda name: self.analysis.task_analyses[name].failures.total_risk(),
            reverse=True,
        )

    def summary_lines(self) -> List[str]:
        """One line per task: reliability, automation verdict, top mitigation."""
        lines: List[str] = []
        for task_name in self.ranked_tasks_by_risk():
            recommendation = self.tasks[task_name]
            top = recommendation.top_mitigation()
            top_name = top.name if top is not None else "none"
            lines.append(
                f"{task_name}: reliability ≈ {recommendation.success_probability:.0%}, "
                f"automation → {recommendation.automation.recommendation.value}, "
                f"top mitigation → {top_name}"
            )
        return lines


def recommend_for_system(
    system: SecureSystem,
    domain: Optional[str] = None,
    catalog: Optional[Sequence[Mitigation]] = None,
) -> SystemRecommendations:
    """Run analysis + automation evaluation + mitigation ranking for a system.

    Parameters
    ----------
    system:
        The system to analyse.
    domain:
        Domain catalog to include (``"passwords"``, ``"antiphishing"``,
        ``"indicators"``); when omitted, the full catalog is used.
    catalog:
        Explicit mitigation catalog overriding ``domain``.
    """
    if catalog is not None:
        effective_catalog = list(catalog)
    elif domain is not None:
        effective_catalog = catalog_for(domain)
    else:
        effective_catalog = full_catalog()

    analysis = analyze_system(system)
    tasks: Dict[str, TaskRecommendation] = {}
    for task in system.security_critical_tasks():
        task_analysis = analysis.task_analyses[task.name]
        automation = evaluate_automation(task, task_analysis.success_probability)
        plan = suggest_mitigations(task_analysis.failures, catalog=effective_catalog)
        tasks[task.name] = TaskRecommendation(
            task_name=task.name,
            automation=automation,
            mitigation_plan=plan,
            success_probability=task_analysis.success_probability,
        )
    return SystemRecommendations(system_name=system.name, analysis=analysis, tasks=tasks)
