"""Security-automation analysis (the task-automation step, elaborated).

Section 3 points designers to Edwards, Poole & Stoll's "Security Automation
Considered Harmful?" for the limits of automation, and to Ross's
"Firefox and the Worry-Free Web" for the default-settings argument.  This
module encodes those considerations as an explicit checklist:
:func:`evaluate_automation` scores a task's
:class:`~repro.core.task.AutomationProfile` against each guideline and
produces a recommendation with the reasons laid out, which the process
driver and the reports can surface verbatim.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional, Tuple

from ..core.exceptions import AnalysisError
from ..core.task import AutomationProfile, HumanSecurityTask

__all__ = [
    "AutomationGuideline",
    "GuidelineAssessment",
    "AutomationRecommendation",
    "AutomationEvaluation",
    "evaluate_automation",
]


class AutomationGuideline(enum.Enum):
    """Considerations for deciding whether to automate a human security task."""

    ACCURACY_BEATS_HUMAN = "accuracy_beats_human"
    HUMAN_HOLDS_CONTEXT = "human_holds_context"
    FALSE_POSITIVES_TOLERABLE = "false_positives_tolerable"
    COST_ACCEPTABLE = "cost_acceptable"
    POLICY_NUANCE_ENCODABLE = "policy_nuance_encodable"

    @property
    def question(self) -> str:
        return _QUESTIONS[self]


_QUESTIONS = {
    AutomationGuideline.ACCURACY_BEATS_HUMAN: (
        "Would the automated alternative decide more reliably than the expected users?"
    ),
    AutomationGuideline.HUMAN_HOLDS_CONTEXT: (
        "Do users hold context or knowledge the software cannot capture?"
    ),
    AutomationGuideline.FALSE_POSITIVES_TOLERABLE: (
        "Is the automated alternative's false-positive rate tolerable for this hazard?"
    ),
    AutomationGuideline.COST_ACCEPTABLE: (
        "Is the automated alternative affordable and deployable in this setting?"
    ),
    AutomationGuideline.POLICY_NUANCE_ENCODABLE: (
        "Can the relevant policy, including its special cases, actually be encoded?"
    ),
}


class AutomationRecommendation(enum.Enum):
    """Overall recommendation produced by the evaluation."""

    AUTOMATE_FULLY = "automate_fully"
    AUTOMATE_WITH_OVERRIDE = "automate_with_override"
    USE_BETTER_DEFAULTS = "use_better_defaults"
    KEEP_HUMAN_WITH_SUPPORT = "keep_human_with_support"


@dataclasses.dataclass(frozen=True)
class GuidelineAssessment:
    """One guideline's verdict for a specific task."""

    guideline: AutomationGuideline
    favors_automation: bool
    note: str


@dataclasses.dataclass(frozen=True)
class AutomationEvaluation:
    """Full automation evaluation for one task."""

    task_name: str
    recommendation: AutomationRecommendation
    assessments: Tuple[GuidelineAssessment, ...]
    human_reliability: float

    def favorable_count(self) -> int:
        return sum(1 for assessment in self.assessments if assessment.favors_automation)

    def reasons(self) -> List[str]:
        return [assessment.note for assessment in self.assessments]


def evaluate_automation(
    task: HumanSecurityTask,
    human_reliability: float,
    false_positive_tolerance: float = 0.1,
) -> AutomationEvaluation:
    """Evaluate whether (and how) to automate a human security task.

    Parameters
    ----------
    task:
        The task under consideration.
    human_reliability:
        Estimated probability the human performs the task successfully
        (typically the analysis layer's end-to-end success probability).
    false_positive_tolerance:
        Maximum automated false-positive rate considered tolerable for
        this hazard.
    """
    if not 0.0 <= human_reliability <= 1.0:
        raise AnalysisError("human_reliability must be in [0, 1]")
    profile: AutomationProfile = task.automation

    assessments: List[GuidelineAssessment] = []

    accuracy_favors = (
        profile.can_fully_automate and profile.automation_accuracy > human_reliability
    )
    assessments.append(
        GuidelineAssessment(
            guideline=AutomationGuideline.ACCURACY_BEATS_HUMAN,
            favors_automation=accuracy_favors,
            note=(
                f"automation accuracy ≈ {profile.automation_accuracy:.0%} vs human "
                f"reliability ≈ {human_reliability:.0%}"
            ),
        )
    )

    context_favors = profile.human_information_advantage < 0.5
    assessments.append(
        GuidelineAssessment(
            guideline=AutomationGuideline.HUMAN_HOLDS_CONTEXT,
            favors_automation=context_favors,
            note=(
                "the human holds little decisive context"
                if context_favors
                else "the human holds context the software cannot capture"
            ),
        )
    )

    fp_favors = profile.automation_false_positive_rate <= false_positive_tolerance
    assessments.append(
        GuidelineAssessment(
            guideline=AutomationGuideline.FALSE_POSITIVES_TOLERABLE,
            favors_automation=fp_favors,
            note=(
                f"automated false-positive rate ≈ "
                f"{profile.automation_false_positive_rate:.0%} "
                f"(tolerance {false_positive_tolerance:.0%})"
            ),
        )
    )

    cost_favors = profile.automation_cost <= 0.5
    assessments.append(
        GuidelineAssessment(
            guideline=AutomationGuideline.COST_ACCEPTABLE,
            favors_automation=cost_favors,
            note=f"relative automation cost ≈ {profile.automation_cost:.0%}",
        )
    )

    nuance_favors = profile.can_fully_automate and profile.human_information_advantage < 0.7
    assessments.append(
        GuidelineAssessment(
            guideline=AutomationGuideline.POLICY_NUANCE_ENCODABLE,
            favors_automation=nuance_favors,
            note=(
                "the decision rule can plausibly be encoded"
                if nuance_favors
                else "the policy's nuances and special cases resist encoding"
            ),
        )
    )

    favorable = sum(1 for assessment in assessments if assessment.favors_automation)
    if not profile.can_fully_automate:
        recommendation = AutomationRecommendation.KEEP_HUMAN_WITH_SUPPORT
    elif favorable >= 4 and accuracy_favors and not profile.vendor_constraints:
        recommendation = AutomationRecommendation.AUTOMATE_FULLY
    elif favorable >= 3:
        recommendation = AutomationRecommendation.AUTOMATE_WITH_OVERRIDE
    elif accuracy_favors:
        recommendation = AutomationRecommendation.USE_BETTER_DEFAULTS
    else:
        recommendation = AutomationRecommendation.KEEP_HUMAN_WITH_SUPPORT

    return AutomationEvaluation(
        task_name=task.name,
        recommendation=recommendation,
        assessments=tuple(assessments),
        human_reliability=human_reliability,
    )
