"""Mitigation catalogs, automation analysis, and recommendation assembly."""

from .automation import (
    AutomationEvaluation,
    AutomationGuideline,
    AutomationRecommendation,
    GuidelineAssessment,
    evaluate_automation,
)
from .catalog import (
    ANTIPHISHING_MITIGATIONS,
    DOMAIN_MITIGATIONS,
    INDICATOR_MITIGATIONS,
    PASSWORD_MITIGATIONS,
    catalog_for,
    full_catalog,
)
from .recommendations import (
    SystemRecommendations,
    TaskRecommendation,
    recommend_for_system,
)

__all__ = [
    "AutomationGuideline",
    "AutomationRecommendation",
    "AutomationEvaluation",
    "GuidelineAssessment",
    "evaluate_automation",
    "PASSWORD_MITIGATIONS",
    "ANTIPHISHING_MITIGATIONS",
    "INDICATOR_MITIGATIONS",
    "DOMAIN_MITIGATIONS",
    "catalog_for",
    "full_catalog",
    "TaskRecommendation",
    "SystemRecommendations",
    "recommend_for_system",
]
