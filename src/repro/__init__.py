"""repro — an executable reproduction of Cranor's human-in-the-loop framework.

The package reproduces *A Framework for Reasoning About the Human in the
Loop* (CMU-CyLab-08-001, 2008) as a Python library:

* :mod:`repro.core` — the framework itself: components, Table-1 checklist,
  task/system models, failure identification, mitigation suggestion, and
  the four-step human threat identification and mitigation process.
* :mod:`repro.chip`, :mod:`repro.gems`, :mod:`repro.norman` — the theory
  the framework builds on (C-HIP, GEMS, Norman's action cycle and gulfs).
* :mod:`repro.simulation` — the Monte-Carlo human-receiver substrate that
  stands in for the cited user studies.
* :mod:`repro.systems` — concrete secure-system models (anti-phishing
  warnings, password policies, SSL indicators, ...), unified behind the
  parameterized scenario registry.
* :mod:`repro.experiments` — the declarative experiment layer: sweep
  grids over scenario parameters, serial or multi-core execution, and
  provenance-carrying result sets.
* :mod:`repro.studies` — encoded findings from the cited user studies.
* :mod:`repro.mitigations` — concrete mitigation catalogs and automation
  analysis.
* :mod:`repro.io`, :mod:`repro.viz` — serialization, tables, figures.

Quick start::

    from repro.core import HumanInTheLoopFramework
    from repro.systems import antiphishing

    framework = HumanInTheLoopFramework()
    analysis = framework.analyze_system(antiphishing.build_system())
    print(framework.report_system(analysis))
"""

from . import (
    chip,
    core,
    experiments,
    gems,
    io,
    mitigations,
    norman,
    simulation,
    studies,
    systems,
    viz,
)
from .core import HumanInTheLoopFramework

__version__ = "1.1.0"

__all__ = [
    "HumanInTheLoopFramework",
    "core",
    "chip",
    "gems",
    "norman",
    "simulation",
    "systems",
    "studies",
    "mitigations",
    "experiments",
    "io",
    "viz",
    "__version__",
]
