"""Exception hierarchy for the human-in-the-loop framework library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  Sub-classes signal the layer that raised them:
model construction, analysis, simulation, or serialization.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ModelError(ReproError):
    """Raised when a framework model object is constructed inconsistently.

    Examples: a communication with an activeness score outside ``[0, 1]``,
    a receiver profile with a negative age, or a task that references an
    undefined communication.
    """


class ValidationError(ModelError):
    """Raised when validation of a fully-built model object fails."""


class AnalysisError(ReproError):
    """Raised when a framework analysis cannot be completed.

    Typically indicates that required inputs (task, communication, receiver
    profile) are missing or mutually inconsistent.
    """


class UnknownComponentError(AnalysisError):
    """Raised when a component name does not exist in the framework."""

    def __init__(self, component: object) -> None:
        super().__init__(f"unknown framework component: {component!r}")
        self.component = component


class SimulationError(ReproError):
    """Raised when the human-receiver simulation is misconfigured."""


class CalibrationError(SimulationError):
    """Raised when a calibration is missing parameters or is out of range."""


class SerializationError(ReproError):
    """Raised when a model cannot be serialized to or parsed from JSON."""


class ProcessError(ReproError):
    """Raised when the human threat identification and mitigation process
    is driven incorrectly (e.g. steps executed out of order)."""


class ClusterError(ReproError):
    """Raised when the cluster scheduler cannot complete a sharded sweep.

    Examples: a shard exhausting its retry budget, a worker transport that
    cannot launch processes, or a scheduler misconfiguration (zero
    workers, negative timeouts).
    """
