"""Security communications: the first component of the framework.

Section 2.1 of the paper distinguishes five types of security
communications — warnings, notices, status indicators, training, and
policies — and additionally classifies communications on an
*active–passive* spectrum.  This module provides:

* :class:`CommunicationType` — the five-way taxonomy,
* :class:`ActivenessLevel` — named points on the active–passive spectrum,
* :class:`HazardProfile` — severity / frequency / user-action-necessity of
  the hazard the communication addresses,
* :class:`Communication` — a fully attributed security communication, and
* :func:`recommend_communication_type` /
  :func:`recommend_activeness` — advisory functions that encode the
  paper's design guidance ("frequent, active warnings about relatively
  low-risk hazards ... may lead users to start ignoring not only these
  warnings, but also similar warnings about more severe hazards").
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Tuple

from .exceptions import ModelError

__all__ = [
    "CommunicationType",
    "ActivenessLevel",
    "DeliveryChannel",
    "HazardSeverity",
    "HazardFrequency",
    "HazardProfile",
    "Communication",
    "CommunicationAdvice",
    "recommend_communication_type",
    "recommend_activeness",
    "advise",
]


class CommunicationType(enum.Enum):
    """The five types of security communications (Section 2.1)."""

    WARNING = "warning"
    NOTICE = "notice"
    STATUS_INDICATOR = "status_indicator"
    TRAINING = "training"
    POLICY = "policy"

    @property
    def description(self) -> str:
        return _TYPE_DESCRIPTIONS[self]

    @property
    def triggers_immediate_action(self) -> bool:
        """Whether this type is meant to trigger immediate hazard avoidance."""
        return self is CommunicationType.WARNING

    @property
    def requires_knowledge_transfer(self) -> bool:
        """Whether the application stages (retention / transfer) are central.

        The paper notes the knowledge acquisition, retention and transfer
        steps are "especially applicable to training and policy
        communications"; automatically-displayed warnings largely do not
        need transfer because the system decides when they apply.
        """
        return self in (CommunicationType.TRAINING, CommunicationType.POLICY)


_TYPE_DESCRIPTIONS: Dict[CommunicationType, str] = {
    CommunicationType.WARNING: (
        "Alerts users to take immediate action to avoid a hazard; most "
        "effective when it includes clear hazard-avoidance instructions."
    ),
    CommunicationType.NOTICE: (
        "Informs users about characteristics of an entity or object so they "
        "can judge whether interacting with it is hazardous (e.g. privacy "
        "policies, SSL certificates)."
    ),
    CommunicationType.STATUS_INDICATOR: (
        "Informs users about system status; usually has a small number of "
        "possible states (e.g. Bluetooth enabled, anti-virus up to date)."
    ),
    CommunicationType.TRAINING: (
        "Teaches users about security threats and how to respond to them "
        "(tutorials, games, manuals, seminars, videos)."
    ),
    CommunicationType.POLICY: (
        "Documents informing users about system or organizational policies "
        "they are expected to comply with (e.g. password policies)."
    ),
}


class ActivenessLevel(enum.Enum):
    """Named points on the active–passive spectrum (Section 2.1).

    Levels are ordered from most active to most passive; each maps to a
    numeric score in ``[0, 1]`` where 1.0 is maximally active.
    """

    BLOCKING = "blocking"
    INTERRUPTING = "interrupting"
    SALIENT_NON_BLOCKING = "salient_non_blocking"
    PASSIVE_NOTICEABLE = "passive_noticeable"
    PASSIVE_SUBTLE = "passive_subtle"

    @property
    def score(self) -> float:
        return _ACTIVENESS_SCORES[self]

    @property
    def interrupts_primary_task(self) -> bool:
        return self in (ActivenessLevel.BLOCKING, ActivenessLevel.INTERRUPTING)

    @classmethod
    def from_score(cls, score: float) -> "ActivenessLevel":
        """Map a numeric activeness score back to the nearest named level."""
        if not 0.0 <= score <= 1.0:
            raise ModelError(f"activeness score must be in [0, 1], got {score}")
        best_level = ActivenessLevel.PASSIVE_SUBTLE
        best_distance = float("inf")
        for level in cls:
            distance = abs(level.score - score)
            if distance < best_distance:
                best_distance = distance
                best_level = level
        return best_level


_ACTIVENESS_SCORES: Dict[ActivenessLevel, float] = {
    ActivenessLevel.BLOCKING: 1.0,
    ActivenessLevel.INTERRUPTING: 0.8,
    ActivenessLevel.SALIENT_NON_BLOCKING: 0.6,
    ActivenessLevel.PASSIVE_NOTICEABLE: 0.35,
    ActivenessLevel.PASSIVE_SUBTLE: 0.1,
}


class DeliveryChannel(enum.Enum):
    """Channel through which a communication reaches the receiver."""

    DIALOG = "dialog"
    IN_PAGE = "in_page"
    BROWSER_CHROME = "browser_chrome"
    TOOLBAR = "toolbar"
    SYSTEM_TRAY = "system_tray"
    EMAIL = "email"
    DOCUMENT = "document"
    IN_PERSON = "in_person"
    AUDIO = "audio"
    VIDEO = "video"
    WEB_PAGE = "web_page"


class HazardSeverity(enum.Enum):
    """Severity of the hazard a communication addresses."""

    NEGLIGIBLE = 0
    LOW = 1
    MODERATE = 2
    HIGH = 3
    CRITICAL = 4

    @property
    def weight(self) -> float:
        """Severity expressed on a 0–1 scale."""
        return self.value / 4.0


class HazardFrequency(enum.Enum):
    """How often the hazard (and hence the communication) is encountered."""

    RARE = 0
    OCCASIONAL = 1
    FREQUENT = 2
    CONSTANT = 3

    @property
    def weight(self) -> float:
        """Frequency expressed on a 0–1 scale."""
        return self.value / 3.0


@dataclasses.dataclass(frozen=True)
class HazardProfile:
    """Attributes of the hazard a communication is meant to avert.

    These are exactly the "factors to consider" Table 1 lists for the
    communication component: severity of hazard, frequency with which the
    hazard is encountered, and the extent to which appropriate user action
    is necessary to avoid the hazard.
    """

    severity: HazardSeverity = HazardSeverity.MODERATE
    frequency: HazardFrequency = HazardFrequency.OCCASIONAL
    user_action_necessity: float = 0.5
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.user_action_necessity <= 1.0:
            raise ModelError(
                "user_action_necessity must be in [0, 1], got "
                f"{self.user_action_necessity}"
            )

    @property
    def risk_score(self) -> float:
        """Combined risk weight in [0, 1] used by the advisory functions."""
        return (
            0.5 * self.severity.weight
            + 0.2 * self.frequency.weight
            + 0.3 * self.user_action_necessity
        )


@dataclasses.dataclass
class Communication:
    """A fully attributed security communication.

    Parameters
    ----------
    name:
        Short identifier, e.g. ``"firefox-antiphishing-warning"``.
    comm_type:
        One of the five communication types.
    activeness:
        Position on the active–passive spectrum, either a named level or a
        numeric score in ``[0, 1]``.
    hazard:
        Profile of the hazard the communication addresses.
    clarity:
        How clear and jargon-free the communication text is (0–1).
    includes_instructions:
        Whether the communication contains specific hazard-avoidance
        instructions (a property of good warnings per Section 2.3.2).
    explains_risk:
        Whether the communication explains *why* the receiver is at risk;
        the anti-phishing case study notes the IE/Firefox warnings "did not
        explain to users why they were being presented with this choice".
    resembles_low_risk_communications:
        Whether the communication looks similar to frequently-encountered,
        non-critical communications (a failure source in the IE warning).
    length_words:
        Approximate length of the message; long messages hurt attention
        maintenance.
    channel:
        Delivery channel.
    conspicuity:
        Visual salience of the communication independent of activeness
        (format, font size, placement), 0–1.
    allows_override:
        Whether the user can dismiss/override and proceed anyway.
    false_positive_rate:
        Historical rate at which the communication fires when no hazard is
        present; drives the attitudes/beliefs component ("if the indicator
        has displayed erroneous warnings in the past, users may be less
        inclined to take it seriously").
    habituation_exposures:
        Number of times a typical receiver has already seen this
        communication; drives habituation.
    """

    name: str
    comm_type: CommunicationType
    activeness: float = ActivenessLevel.PASSIVE_NOTICEABLE.score
    hazard: HazardProfile = dataclasses.field(default_factory=HazardProfile)
    clarity: float = 0.5
    includes_instructions: bool = False
    explains_risk: bool = False
    resembles_low_risk_communications: bool = False
    length_words: int = 30
    channel: DeliveryChannel = DeliveryChannel.DIALOG
    conspicuity: float = 0.5
    allows_override: bool = True
    false_positive_rate: float = 0.0
    habituation_exposures: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if isinstance(self.activeness, ActivenessLevel):
            self.activeness = self.activeness.score
        for field_name in ("activeness", "clarity", "conspicuity", "false_positive_rate"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ModelError(f"{field_name} must be in [0, 1], got {value}")
        if self.length_words < 0:
            raise ModelError("length_words must be non-negative")
        if self.habituation_exposures < 0:
            raise ModelError("habituation_exposures must be non-negative")
        if not self.name:
            raise ModelError("communication name must be non-empty")

    @property
    def activeness_level(self) -> ActivenessLevel:
        """The nearest named activeness level."""
        return ActivenessLevel.from_score(self.activeness)

    @property
    def is_active(self) -> bool:
        """Whether the communication is on the active half of the spectrum."""
        return self.activeness >= 0.5

    @property
    def is_passive(self) -> bool:
        return not self.is_active

    @property
    def interrupts_primary_task(self) -> bool:
        return self.activeness_level.interrupts_primary_task

    def with_activeness(self, activeness: float) -> "Communication":
        """Return a copy of this communication with a different activeness."""
        return dataclasses.replace(self, activeness=activeness)

    def with_exposures(self, exposures: int) -> "Communication":
        """Return a copy with a different habituation exposure count."""
        return dataclasses.replace(self, habituation_exposures=exposures)


@dataclasses.dataclass(frozen=True)
class CommunicationAdvice:
    """Result of the §2.1 design-guidance advisory functions."""

    recommended_type: CommunicationType
    recommended_activeness: ActivenessLevel
    habituation_risk: float
    rationale: List[str]

    def summary(self) -> str:
        lines = [
            f"Recommended type: {self.recommended_type.value}",
            f"Recommended activeness: {self.recommended_activeness.value}",
            f"Habituation risk: {self.habituation_risk:.2f}",
        ]
        lines.extend(f"- {reason}" for reason in self.rationale)
        return "\n".join(lines)


def recommend_communication_type(hazard: HazardProfile) -> CommunicationType:
    """Recommend a communication type for a hazard per the §2.1 guidance.

    Severe hazards where user action is critical call for warnings; hazards
    that users cannot act on, or low-risk situations, call for notices or
    status indicators that "provide information that may be of use to
    expert users without interrupting ordinary users".
    """
    if hazard.user_action_necessity < 0.25:
        # Users can do little about the hazard; interrupting them only
        # breeds habituation.
        return CommunicationType.STATUS_INDICATOR
    if hazard.severity.weight >= 0.5 and hazard.user_action_necessity >= 0.5:
        return CommunicationType.WARNING
    return CommunicationType.NOTICE


def recommend_activeness(hazard: HazardProfile) -> ActivenessLevel:
    """Recommend a point on the active–passive spectrum for a hazard.

    High-severity, action-critical, rarely encountered hazards justify
    blocking warnings.  Frequently-encountered or low-severity hazards get
    progressively more passive treatments to avoid habituating users.
    """
    risk = hazard.risk_score
    frequency_penalty = hazard.frequency.weight * (1.0 - hazard.severity.weight)
    effective = risk - 0.35 * frequency_penalty
    if effective >= 0.7:
        return ActivenessLevel.BLOCKING
    if effective >= 0.55:
        return ActivenessLevel.INTERRUPTING
    if effective >= 0.4:
        return ActivenessLevel.SALIENT_NON_BLOCKING
    if effective >= 0.2:
        return ActivenessLevel.PASSIVE_NOTICEABLE
    return ActivenessLevel.PASSIVE_SUBTLE


def _habituation_risk(hazard: HazardProfile, activeness: ActivenessLevel) -> float:
    """Estimate habituation risk of pairing a hazard with an activeness level.

    Frequent, active communications about low-severity hazards carry the
    highest habituation risk (§2.1 and §2.3.1).
    """
    frequency = hazard.frequency.weight
    mismatch = max(0.0, activeness.score - hazard.severity.weight)
    return min(1.0, frequency * (0.4 + 0.6 * mismatch))


def advise(hazard: HazardProfile) -> CommunicationAdvice:
    """Produce a full design recommendation for a hazard profile."""
    recommended_type = recommend_communication_type(hazard)
    recommended_activeness = recommend_activeness(hazard)
    habituation_risk = _habituation_risk(hazard, recommended_activeness)

    rationale: List[str] = []
    if recommended_type is CommunicationType.WARNING:
        rationale.append(
            "Hazard is severe and user action is necessary: use a warning "
            "with explicit avoidance instructions."
        )
    elif recommended_type is CommunicationType.STATUS_INDICATOR:
        rationale.append(
            "Users cannot meaningfully act on this hazard: prefer a status "
            "indicator over an interrupting warning."
        )
    else:
        rationale.append(
            "Hazard is moderate: a notice gives users the information they "
            "need without interrupting the primary task."
        )
    if hazard.frequency.weight >= HazardFrequency.FREQUENT.weight:
        rationale.append(
            "Hazard is encountered frequently: keep the communication "
            "passive enough to limit habituation, or ensure rate limiting."
        )
    if habituation_risk > 0.5:
        rationale.append(
            "High habituation risk: repeated active interruptions for this "
            "hazard will train users to ignore similar, more severe warnings."
        )
    return CommunicationAdvice(
        recommended_type=recommended_type,
        recommended_activeness=recommended_activeness,
        habituation_risk=habituation_risk,
        rationale=rationale,
    )
