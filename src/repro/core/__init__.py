"""Core of the reproduction: the human-in-the-loop security framework.

This package encodes the paper's primary contribution — the framework of
Figure 1 / Table 1, the behavior-stage theory it builds on, and the
four-step human threat identification and mitigation process of Figure 2 —
as an executable, queryable Python library.

The heart of the package is the shared stage pipeline:

* :mod:`repro.core.stages` names the seven information-processing stages;
* :mod:`repro.core.probabilities` gives each stage a success probability —
  polymorphically, over one receiver or a whole numpy batch of them;
* :mod:`repro.core.pipeline` owns the traversal itself (applicable stages,
  intention/capability gates, failure-outcome semantics) and is consumed
  by *both* readings of the framework: the analytic walk in
  :mod:`repro.core.analysis` and the stochastic populations of
  :mod:`repro.simulation`.

Typical use::

    from repro.core import HumanInTheLoopFramework
    from repro.systems import antiphishing

    framework = HumanInTheLoopFramework()
    system = antiphishing.build_system()
    analysis = framework.analyze_system(system)
    print(framework.report_system(analysis))
"""

from .analysis import (
    ComponentAssessment,
    ComponentRating,
    SystemAnalysis,
    TaskAnalysis,
    analyze_system,
    analyze_task,
)
from .behavior import (
    BehaviorAssessment,
    BehaviorFailureKind,
    BehaviorOutcome,
    TaskDesign,
    assess_behavior_design,
)
from .checklist import (
    TABLE_1,
    Checklist,
    ChecklistAnswer,
    ChecklistEntry,
    ChecklistQuestion,
    all_questions,
    build_checklist,
    entry_for,
    iter_entries,
)
from .communication import (
    ActivenessLevel,
    Communication,
    CommunicationAdvice,
    CommunicationType,
    DeliveryChannel,
    HazardFrequency,
    HazardProfile,
    HazardSeverity,
    advise,
    recommend_activeness,
    recommend_communication_type,
)
from .components import (
    Component,
    ComponentGroup,
    component_group,
    components_in_group,
    influence_edges,
    ordered_components,
)
from .exceptions import (
    AnalysisError,
    CalibrationError,
    ModelError,
    ProcessError,
    ReproError,
    SerializationError,
    SimulationError,
    UnknownComponentError,
    ValidationError,
)
from .failure import (
    FailureInventory,
    FailureLikelihood,
    FailureMode,
    FailureSeverity,
)
from .framework import HumanInTheLoopFramework
from .impediments import (
    Environment,
    EnvironmentalStimulus,
    Interference,
    InterferenceSource,
    StimulusKind,
)
from .mitigation import (
    GENERIC_MITIGATIONS,
    Mitigation,
    MitigationPlan,
    MitigationStrategy,
    suggest_mitigations,
)
from .pipeline import (
    FailureSemantics,
    PipelinePlan,
    PipelineWalk,
    build_pipeline,
    failure_needs_override,
    failure_outcome,
    failure_semantics,
)
from .process import (
    AutomationDecision,
    HumanThreatProcess,
    ProcessPass,
    ProcessResult,
    ProcessStep,
    TaskAutomationOutcome,
)
from .receiver import (
    AttitudesBeliefs,
    Capabilities,
    Demographics,
    EducationLevel,
    HumanReceiver,
    Intentions,
    KnowledgeExperience,
    Motivation,
    PersonalVariables,
    expert_receiver,
    novice_receiver,
    typical_receiver,
)
from .report import (
    render_failure_table,
    render_mitigation_plan,
    render_process_result,
    render_system_analysis,
    render_task_analysis,
)
from .stages import STAGE_ORDER, Stage, StageOutcome, StageTrace, stage_component
from .task import AutomationProfile, HumanSecurityTask, SecureSystem

__all__ = [
    # framework facade
    "HumanInTheLoopFramework",
    # components
    "Component",
    "ComponentGroup",
    "component_group",
    "components_in_group",
    "influence_edges",
    "ordered_components",
    # communication
    "Communication",
    "CommunicationType",
    "CommunicationAdvice",
    "ActivenessLevel",
    "DeliveryChannel",
    "HazardProfile",
    "HazardSeverity",
    "HazardFrequency",
    "advise",
    "recommend_activeness",
    "recommend_communication_type",
    # impediments
    "Environment",
    "EnvironmentalStimulus",
    "Interference",
    "InterferenceSource",
    "StimulusKind",
    # receiver
    "HumanReceiver",
    "PersonalVariables",
    "Demographics",
    "EducationLevel",
    "KnowledgeExperience",
    "Intentions",
    "AttitudesBeliefs",
    "Motivation",
    "Capabilities",
    "novice_receiver",
    "typical_receiver",
    "expert_receiver",
    # pipeline
    "PipelinePlan",
    "PipelineWalk",
    "FailureSemantics",
    "build_pipeline",
    "failure_semantics",
    "failure_outcome",
    "failure_needs_override",
    # stages / behavior
    "Stage",
    "STAGE_ORDER",
    "StageOutcome",
    "StageTrace",
    "stage_component",
    "BehaviorOutcome",
    "BehaviorFailureKind",
    "BehaviorAssessment",
    "TaskDesign",
    "assess_behavior_design",
    # checklist
    "TABLE_1",
    "Checklist",
    "ChecklistAnswer",
    "ChecklistEntry",
    "ChecklistQuestion",
    "all_questions",
    "build_checklist",
    "entry_for",
    "iter_entries",
    # task / system
    "HumanSecurityTask",
    "SecureSystem",
    "AutomationProfile",
    # analysis
    "TaskAnalysis",
    "SystemAnalysis",
    "ComponentAssessment",
    "ComponentRating",
    "analyze_task",
    "analyze_system",
    # failures
    "FailureMode",
    "FailureInventory",
    "FailureSeverity",
    "FailureLikelihood",
    # mitigation
    "Mitigation",
    "MitigationPlan",
    "MitigationStrategy",
    "GENERIC_MITIGATIONS",
    "suggest_mitigations",
    # process
    "HumanThreatProcess",
    "ProcessResult",
    "ProcessPass",
    "ProcessStep",
    "AutomationDecision",
    "TaskAutomationOutcome",
    # reporting
    "render_task_analysis",
    "render_system_analysis",
    "render_mitigation_plan",
    "render_process_result",
    "render_failure_table",
    # exceptions
    "ReproError",
    "ModelError",
    "ValidationError",
    "AnalysisError",
    "UnknownComponentError",
    "SimulationError",
    "CalibrationError",
    "SerializationError",
    "ProcessError",
]
