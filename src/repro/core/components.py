"""Framework components and component groups.

This module encodes the structure shown in Figure 1 and the left-most two
columns of Table 1 of the paper: the named components of the
human-in-the-loop security framework and the groups they belong to.

Components fall into four top-level blocks:

* the **communication** itself,
* **communication impediments** (environmental stimuli, interference),
* the **human receiver** (personal variables, intentions, capabilities and
  the three information-processing steps: communication delivery,
  communication processing, application), and
* the resulting **behavior**.

The relationships are intentionally loose — the paper stresses the framework
is "a conceptual framework that can be used much like a checklist" rather
than a strict temporal model — so the graph exposed by
:func:`component_graph` captures the influence edges of Figure 1 without
imposing a single linear ordering.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Tuple

__all__ = [
    "Component",
    "ComponentGroup",
    "COMPONENT_GROUPS",
    "GROUP_MEMBERS",
    "RECEIVER_COMPONENTS",
    "PROCESSING_STEP_COMPONENTS",
    "component_group",
    "components_in_group",
    "ordered_components",
    "influence_edges",
]


class ComponentGroup(enum.Enum):
    """Top-level blocks of the framework (Figure 1)."""

    COMMUNICATION = "communication"
    COMMUNICATION_IMPEDIMENTS = "communication_impediments"
    PERSONAL_VARIABLES = "personal_variables"
    INTENTIONS = "intentions"
    CAPABILITIES = "capabilities"
    COMMUNICATION_DELIVERY = "communication_delivery"
    COMMUNICATION_PROCESSING = "communication_processing"
    APPLICATION = "application"
    BEHAVIOR = "behavior"

    @property
    def is_receiver_group(self) -> bool:
        """Whether this group sits inside the human receiver box."""
        return self not in (
            ComponentGroup.COMMUNICATION,
            ComponentGroup.COMMUNICATION_IMPEDIMENTS,
            ComponentGroup.BEHAVIOR,
        )

    @property
    def is_processing_step(self) -> bool:
        """Whether this group is one of the three information-processing steps."""
        return self in (
            ComponentGroup.COMMUNICATION_DELIVERY,
            ComponentGroup.COMMUNICATION_PROCESSING,
            ComponentGroup.APPLICATION,
        )


class Component(enum.Enum):
    """Individual components of the framework (rows of Table 1)."""

    COMMUNICATION = "communication"
    ENVIRONMENTAL_STIMULI = "environmental_stimuli"
    INTERFERENCE = "interference"
    DEMOGRAPHICS_AND_PERSONAL_CHARACTERISTICS = "demographics_and_personal_characteristics"
    KNOWLEDGE_AND_EXPERIENCE = "knowledge_and_experience"
    ATTITUDES_AND_BELIEFS = "attitudes_and_beliefs"
    MOTIVATION = "motivation"
    CAPABILITIES = "capabilities"
    ATTENTION_SWITCH = "attention_switch"
    ATTENTION_MAINTENANCE = "attention_maintenance"
    COMPREHENSION = "comprehension"
    KNOWLEDGE_ACQUISITION = "knowledge_acquisition"
    KNOWLEDGE_RETENTION = "knowledge_retention"
    KNOWLEDGE_TRANSFER = "knowledge_transfer"
    BEHAVIOR = "behavior"

    @property
    def group(self) -> ComponentGroup:
        """The top-level block this component belongs to."""
        return COMPONENT_GROUPS[self]

    @property
    def title(self) -> str:
        """Human-readable title as used in Table 1."""
        return _TITLES[self]


COMPONENT_GROUPS: Dict[Component, ComponentGroup] = {
    Component.COMMUNICATION: ComponentGroup.COMMUNICATION,
    Component.ENVIRONMENTAL_STIMULI: ComponentGroup.COMMUNICATION_IMPEDIMENTS,
    Component.INTERFERENCE: ComponentGroup.COMMUNICATION_IMPEDIMENTS,
    Component.DEMOGRAPHICS_AND_PERSONAL_CHARACTERISTICS: ComponentGroup.PERSONAL_VARIABLES,
    Component.KNOWLEDGE_AND_EXPERIENCE: ComponentGroup.PERSONAL_VARIABLES,
    Component.ATTITUDES_AND_BELIEFS: ComponentGroup.INTENTIONS,
    Component.MOTIVATION: ComponentGroup.INTENTIONS,
    Component.CAPABILITIES: ComponentGroup.CAPABILITIES,
    Component.ATTENTION_SWITCH: ComponentGroup.COMMUNICATION_DELIVERY,
    Component.ATTENTION_MAINTENANCE: ComponentGroup.COMMUNICATION_DELIVERY,
    Component.COMPREHENSION: ComponentGroup.COMMUNICATION_PROCESSING,
    Component.KNOWLEDGE_ACQUISITION: ComponentGroup.COMMUNICATION_PROCESSING,
    Component.KNOWLEDGE_RETENTION: ComponentGroup.APPLICATION,
    Component.KNOWLEDGE_TRANSFER: ComponentGroup.APPLICATION,
    Component.BEHAVIOR: ComponentGroup.BEHAVIOR,
}

_TITLES: Dict[Component, str] = {
    Component.COMMUNICATION: "Communication",
    Component.ENVIRONMENTAL_STIMULI: "Environmental Stimuli",
    Component.INTERFERENCE: "Interference",
    Component.DEMOGRAPHICS_AND_PERSONAL_CHARACTERISTICS: "Demographics and personal characteristics",
    Component.KNOWLEDGE_AND_EXPERIENCE: "Knowledge and experience",
    Component.ATTITUDES_AND_BELIEFS: "Attitudes and beliefs",
    Component.MOTIVATION: "Motivation",
    Component.CAPABILITIES: "Capabilities",
    Component.ATTENTION_SWITCH: "Attention switch",
    Component.ATTENTION_MAINTENANCE: "Attention maintenance",
    Component.COMPREHENSION: "Comprehension",
    Component.KNOWLEDGE_ACQUISITION: "Knowledge acquisition",
    Component.KNOWLEDGE_RETENTION: "Knowledge retention",
    Component.KNOWLEDGE_TRANSFER: "Knowledge transfer",
    Component.BEHAVIOR: "Behavior",
}

GROUP_MEMBERS: Dict[ComponentGroup, Tuple[Component, ...]] = {}
for _component, _group in COMPONENT_GROUPS.items():
    GROUP_MEMBERS.setdefault(_group, tuple())
    GROUP_MEMBERS[_group] = GROUP_MEMBERS[_group] + (_component,)

RECEIVER_COMPONENTS: Tuple[Component, ...] = tuple(
    component
    for component in Component
    if component.group.is_receiver_group
)

PROCESSING_STEP_COMPONENTS: Tuple[Component, ...] = tuple(
    component
    for component in Component
    if component.group.is_processing_step
)


def component_group(component: Component) -> ComponentGroup:
    """Return the group a component belongs to."""
    return COMPONENT_GROUPS[component]


def components_in_group(group: ComponentGroup) -> Tuple[Component, ...]:
    """Return the components that belong to ``group`` in Table-1 order."""
    return GROUP_MEMBERS[group]


def ordered_components() -> List[Component]:
    """Return every component in the row order used by Table 1."""
    return list(Component)


def influence_edges() -> List[Tuple[str, str]]:
    """Return the influence edges of Figure 1 as ``(source, target)`` names.

    Node names are either component-group values (for the receiver-internal
    boxes) or the strings ``"communication"``, ``"environmental_stimuli"``,
    ``"interference"`` and ``"behavior"``.  The edge set captures:

    * the communication flowing (possibly degraded by impediments) to the
      receiver's communication-delivery step,
    * the chain of information-processing steps,
    * personal variables, intentions and capabilities influencing the
      processing steps and the final behavior, and
    * impediments influencing delivery directly.
    """
    delivery = ComponentGroup.COMMUNICATION_DELIVERY.value
    processing = ComponentGroup.COMMUNICATION_PROCESSING.value
    application = ComponentGroup.APPLICATION.value
    behavior = ComponentGroup.BEHAVIOR.value
    personal = ComponentGroup.PERSONAL_VARIABLES.value
    intentions = ComponentGroup.INTENTIONS.value
    capabilities = ComponentGroup.CAPABILITIES.value
    communication = ComponentGroup.COMMUNICATION.value
    stimuli = Component.ENVIRONMENTAL_STIMULI.value
    interference = Component.INTERFERENCE.value

    return [
        (communication, interference),
        (communication, delivery),
        (stimuli, delivery),
        (interference, delivery),
        (stimuli, behavior),
        (delivery, processing),
        (processing, application),
        (application, behavior),
        (personal, processing),
        (personal, application),
        (personal, intentions),
        (personal, capabilities),
        (intentions, behavior),
        (capabilities, behavior),
        (delivery, behavior),
        (processing, behavior),
    ]
