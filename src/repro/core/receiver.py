"""The human receiver: personal variables, intentions, and capabilities.

Section 2.3 of the paper describes the human receiver as bringing "a set of
personal variables, intentions, and capabilities that impact a set of
information processing steps".  This module models those receiver-side
attributes:

* :class:`Demographics` and :class:`KnowledgeExperience` — the two kinds of
  **personal variables** (Section 2.3.4),
* :class:`AttitudesBeliefs` and :class:`Motivation` — the two kinds of
  **intentions** (Section 2.3.5),
* :class:`Capabilities` — whether the receiver can actually perform the
  required action (Section 2.3.6), and
* :class:`HumanReceiver` — the aggregate, plus a small library of receiver
  profiles (novice, typical, expert) used throughout the examples, tests,
  and case studies.

Numeric attributes are expressed on a 0–1 scale so they can feed directly
into the analysis heuristics and the stochastic simulation substrate.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from .exceptions import ModelError

#: The width-polymorphic value type of the quantitative model: every
#: composite-score formula (and every stage-probability function built on
#: them) accepts floats or numpy arrays and returns the same width, so one
#: set of source lines serves the analytic path and the vectorized engine.
FloatOrArray = Union[float, np.ndarray]

__all__ = [
    "FloatOrArray",
    "EducationLevel",
    "Demographics",
    "KnowledgeExperience",
    "PersonalVariables",
    "AttitudesBeliefs",
    "Motivation",
    "Intentions",
    "Capabilities",
    "HumanReceiver",
    "novice_receiver",
    "typical_receiver",
    "expert_receiver",
    "expertise_score",
    "belief_score",
    "motivation_score",
    "intention_score",
    "capability_score",
]


def _check_unit(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ModelError(f"{name} must be in [0, 1], got {value}")


def _clip_unit(value: FloatOrArray) -> FloatOrArray:
    """Clip a score to [0, 1]; accepts floats or numpy arrays."""
    return np.minimum(1.0, np.maximum(0.0, value))


# ---------------------------------------------------------------------------
# Composite-score formulas
#
# These are the single source of truth for the receiver's derived scores.
# The dataclass properties below evaluate them on scalars; the batch
# simulation engine (repro.simulation.batch) evaluates the same formulas on
# numpy arrays covering a whole population at once, so every argument may be
# either a float or an ndarray.
# ---------------------------------------------------------------------------


def expertise_score(
    security_knowledge: FloatOrArray,
    domain_knowledge: FloatOrArray,
    computer_proficiency: FloatOrArray,
) -> FloatOrArray:
    """Overall expertise combining the knowledge dimensions."""
    return (
        0.4 * security_knowledge
        + 0.35 * domain_knowledge
        + 0.25 * computer_proficiency
    )


def belief_score(
    trust: FloatOrArray,
    perceived_relevance: FloatOrArray,
    risk_perception: FloatOrArray,
    self_efficacy: FloatOrArray,
    response_efficacy: FloatOrArray,
    perceived_time_cost: FloatOrArray,
    annoyance: FloatOrArray,
) -> FloatOrArray:
    """Composite belief that the communication deserves action (0-1)."""
    positive = (
        0.30 * trust
        + 0.20 * perceived_relevance
        + 0.20 * risk_perception
        + 0.15 * self_efficacy
        + 0.15 * response_efficacy
    )
    negative = 0.5 * perceived_time_cost + 0.5 * annoyance
    return _clip_unit(positive - 0.3 * negative)


def motivation_score(
    conflicting_goals: FloatOrArray,
    primary_task_pressure: FloatOrArray,
    perceived_consequences: FloatOrArray,
    incentives: FloatOrArray,
    disincentives: FloatOrArray,
    convenience_cost: FloatOrArray,
) -> FloatOrArray:
    """Composite motivation score (0-1)."""
    positive = (
        0.5 * perceived_consequences
        + 0.25 * incentives
        + 0.25 * disincentives
    )
    negative = (
        0.4 * conflicting_goals
        + 0.3 * primary_task_pressure
        + 0.3 * convenience_cost
    )
    return _clip_unit(0.3 + 0.7 * positive - 0.5 * negative)


def intention_score(belief: FloatOrArray, motivation: FloatOrArray) -> FloatOrArray:
    """Probability-like score that the receiver intends to comply."""
    return _clip_unit(0.6 * belief + 0.4 * motivation)


def capability_score(
    knowledge_to_act: FloatOrArray,
    cognitive_skill: FloatOrArray,
    physical_skill: FloatOrArray,
    memory_capacity: FloatOrArray,
    has_required_software: bool = True,
    has_required_device: bool = True,
) -> FloatOrArray:
    """Composite capability score (0-1).

    The software/device flags are treated as population-wide constants, so
    they stay plain booleans even when the skill arguments are arrays.
    """
    score = (
        0.3 * knowledge_to_act
        + 0.3 * cognitive_skill
        + 0.2 * physical_skill
        + 0.2 * memory_capacity
    )
    if not has_required_software:
        score = score * 0.5
    if not has_required_device:
        score = score * 0.5
    return score


class EducationLevel(enum.Enum):
    """Coarse education levels used in the demographic profile."""

    PRIMARY = "primary"
    SECONDARY = "secondary"
    UNDERGRADUATE = "undergraduate"
    GRADUATE = "graduate"

    @property
    def weight(self) -> float:
        order = [
            EducationLevel.PRIMARY,
            EducationLevel.SECONDARY,
            EducationLevel.UNDERGRADUATE,
            EducationLevel.GRADUATE,
        ]
        return order.index(self) / (len(order) - 1)


@dataclasses.dataclass(frozen=True)
class Demographics:
    """Demographics and personal characteristics (Table 1).

    The factors Table 1 lists are age, gender, culture, education,
    occupation, and disabilities.  Gender and culture are carried as
    free-text descriptors because the framework treats them as context for
    the designer rather than as quantities; the remaining attributes carry
    the fields the analysis heuristics actually consult.
    """

    age: int = 35
    gender: str = ""
    culture: str = ""
    education: EducationLevel = EducationLevel.UNDERGRADUATE
    occupation: str = ""
    disabilities: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.age < 0 or self.age > 130:
            raise ModelError(f"age must be plausible (0-130), got {self.age}")

    @property
    def has_disabilities(self) -> bool:
        return bool(self.disabilities)


@dataclasses.dataclass(frozen=True)
class KnowledgeExperience:
    """Relevant knowledge and experience (Table 1).

    ``security_knowledge`` captures general computer-security literacy,
    ``domain_knowledge`` captures familiarity with the specific hazard the
    communication addresses (e.g. whether the user has heard of phishing),
    and ``prior_exposure`` captures how often the user has previously seen
    this particular kind of communication.
    """

    security_knowledge: float = 0.3
    domain_knowledge: float = 0.3
    computer_proficiency: float = 0.5
    prior_exposure: float = 0.3
    has_received_training: bool = False

    def __post_init__(self) -> None:
        _check_unit("security_knowledge", self.security_knowledge)
        _check_unit("domain_knowledge", self.domain_knowledge)
        _check_unit("computer_proficiency", self.computer_proficiency)
        _check_unit("prior_exposure", self.prior_exposure)

    @property
    def expertise(self) -> float:
        """Overall expertise score combining the knowledge dimensions."""
        return expertise_score(
            self.security_knowledge, self.domain_knowledge, self.computer_proficiency
        )


@dataclasses.dataclass(frozen=True)
class PersonalVariables:
    """The personal-variables block of the framework (Section 2.3.4)."""

    demographics: Demographics = dataclasses.field(default_factory=Demographics)
    knowledge: KnowledgeExperience = dataclasses.field(default_factory=KnowledgeExperience)

    @property
    def expertise(self) -> float:
        return self.knowledge.expertise

    @property
    def is_expert(self) -> bool:
        """Whether the receiver counts as a security expert.

        The paper notes experts "may be more likely to second-guess
        security warnings and, perhaps erroneously, conclude that the
        situation is less risky than it actually is" — so expertise is not
        purely protective, and the analysis layer treats it accordingly.
        """
        return self.knowledge.security_knowledge >= 0.75


@dataclasses.dataclass(frozen=True)
class AttitudesBeliefs:
    """Attitudes and beliefs that gate whether a communication is heeded.

    The factors Table 1 lists are reliability (of the communication),
    conflicting goals, distraction from primary task, risk perception,
    self-efficacy and response-efficacy.  ``trust`` expresses the
    receiver's belief that the communication is accurate; both false
    positives and resemblance to low-risk warnings erode it.
    """

    trust: float = 0.6
    perceived_relevance: float = 0.6
    risk_perception: float = 0.5
    self_efficacy: float = 0.6
    response_efficacy: float = 0.6
    perceived_time_cost: float = 0.3
    annoyance: float = 0.2

    def __post_init__(self) -> None:
        for name in (
            "trust",
            "perceived_relevance",
            "risk_perception",
            "self_efficacy",
            "response_efficacy",
            "perceived_time_cost",
            "annoyance",
        ):
            _check_unit(name, getattr(self, name))

    @property
    def belief_score(self) -> float:
        """Composite belief that the communication deserves action (0–1)."""
        return float(
            belief_score(
                self.trust,
                self.perceived_relevance,
                self.risk_perception,
                self.self_efficacy,
                self.response_efficacy,
                self.perceived_time_cost,
                self.annoyance,
            )
        )


@dataclasses.dataclass(frozen=True)
class Motivation:
    """Motivation to take the appropriate action carefully (Section 2.3.5)."""

    conflicting_goals: float = 0.3
    primary_task_pressure: float = 0.4
    perceived_consequences: float = 0.5
    incentives: float = 0.0
    disincentives: float = 0.0
    convenience_cost: float = 0.3

    def __post_init__(self) -> None:
        for name in (
            "conflicting_goals",
            "primary_task_pressure",
            "perceived_consequences",
            "incentives",
            "disincentives",
            "convenience_cost",
        ):
            _check_unit(name, getattr(self, name))

    @property
    def motivation_score(self) -> float:
        """Composite motivation score (0–1).

        Perceived consequences and organizational incentives/disincentives
        push motivation up; goal conflict, primary-task pressure, and the
        sheer inconvenience of the security task push it down.
        """
        return float(
            motivation_score(
                self.conflicting_goals,
                self.primary_task_pressure,
                self.perceived_consequences,
                self.incentives,
                self.disincentives,
                self.convenience_cost,
            )
        )


@dataclasses.dataclass(frozen=True)
class Intentions:
    """The intentions block: attitudes and beliefs plus motivation."""

    attitudes: AttitudesBeliefs = dataclasses.field(default_factory=AttitudesBeliefs)
    motivation: Motivation = dataclasses.field(default_factory=Motivation)

    @property
    def intention_score(self) -> float:
        """Probability-like score that the receiver intends to comply."""
        return float(
            intention_score(self.attitudes.belief_score, self.motivation.motivation_score)
        )


@dataclasses.dataclass(frozen=True)
class Capabilities:
    """Whether the receiver is capable of taking the appropriate action.

    The paper added this component to C-HIP specifically because "human
    security failures are sometimes attributed to humans being asked to
    complete tasks that they are not capable of completing" — the
    motivating example being the memorability demands of password policies.
    """

    knowledge_to_act: float = 0.6
    cognitive_skill: float = 0.6
    physical_skill: float = 0.9
    memory_capacity: float = 0.5
    has_required_software: bool = True
    has_required_device: bool = True

    def __post_init__(self) -> None:
        for name in ("knowledge_to_act", "cognitive_skill", "physical_skill", "memory_capacity"):
            _check_unit(name, getattr(self, name))

    @property
    def capability_score(self) -> float:
        """Composite capability score (0–1)."""
        return float(
            capability_score(
                self.knowledge_to_act,
                self.cognitive_skill,
                self.physical_skill,
                self.memory_capacity,
                self.has_required_software,
                self.has_required_device,
            )
        )

    def meets(self, requirements: "Capabilities") -> bool:
        """Whether this receiver meets a set of capability requirements.

        ``requirements`` is interpreted as the minimum level demanded along
        each dimension.
        """
        return (
            self.knowledge_to_act >= requirements.knowledge_to_act
            and self.cognitive_skill >= requirements.cognitive_skill
            and self.physical_skill >= requirements.physical_skill
            and self.memory_capacity >= requirements.memory_capacity
            and (self.has_required_software or not requirements.has_required_software)
            and (self.has_required_device or not requirements.has_required_device)
        )


@dataclasses.dataclass(frozen=True)
class HumanReceiver:
    """The complete human receiver: "the user", "the human in the loop"."""

    name: str = "user"
    personal_variables: PersonalVariables = dataclasses.field(default_factory=PersonalVariables)
    intentions: Intentions = dataclasses.field(default_factory=Intentions)
    capabilities: Capabilities = dataclasses.field(default_factory=Capabilities)

    @property
    def expertise(self) -> float:
        return self.personal_variables.expertise

    @property
    def is_expert(self) -> bool:
        return self.personal_variables.is_expert

    @property
    def intention_score(self) -> float:
        return self.intentions.intention_score

    @property
    def capability_score(self) -> float:
        return self.capabilities.capability_score


def novice_receiver(name: str = "novice") -> HumanReceiver:
    """A receiver with little security knowledge or domain awareness.

    Matches the anti-phishing case-study population: "people with a wide
    range of knowledge, abilities, and other personal characteristics, many
    of whom have little or no knowledge about phishing".
    """
    return HumanReceiver(
        name=name,
        personal_variables=PersonalVariables(
            demographics=Demographics(age=30, education=EducationLevel.SECONDARY),
            knowledge=KnowledgeExperience(
                security_knowledge=0.15,
                domain_knowledge=0.1,
                computer_proficiency=0.4,
                prior_exposure=0.1,
            ),
        ),
        intentions=Intentions(
            attitudes=AttitudesBeliefs(trust=0.55, risk_perception=0.35, self_efficacy=0.4),
            motivation=Motivation(primary_task_pressure=0.6, perceived_consequences=0.35),
        ),
        capabilities=Capabilities(
            knowledge_to_act=0.35,
            cognitive_skill=0.5,
            memory_capacity=0.45,
        ),
    )


def typical_receiver(name: str = "typical") -> HumanReceiver:
    """A receiver representative of the general computer-using population."""
    return HumanReceiver(
        name=name,
        personal_variables=PersonalVariables(
            demographics=Demographics(age=35, education=EducationLevel.UNDERGRADUATE),
            knowledge=KnowledgeExperience(
                security_knowledge=0.35,
                domain_knowledge=0.3,
                computer_proficiency=0.6,
                prior_exposure=0.4,
            ),
        ),
        intentions=Intentions(
            attitudes=AttitudesBeliefs(trust=0.6, risk_perception=0.45, self_efficacy=0.55),
            motivation=Motivation(primary_task_pressure=0.5, perceived_consequences=0.45),
        ),
        capabilities=Capabilities(
            knowledge_to_act=0.55,
            cognitive_skill=0.6,
            memory_capacity=0.5,
        ),
    )


def expert_receiver(name: str = "expert") -> HumanReceiver:
    """A security-expert receiver.

    Experts comprehend complicated instructions more readily, but the
    analysis layer also flags their tendency to second-guess warnings.
    """
    return HumanReceiver(
        name=name,
        personal_variables=PersonalVariables(
            demographics=Demographics(age=40, education=EducationLevel.GRADUATE,
                                      occupation="security engineer"),
            knowledge=KnowledgeExperience(
                security_knowledge=0.9,
                domain_knowledge=0.85,
                computer_proficiency=0.95,
                prior_exposure=0.9,
                has_received_training=True,
            ),
        ),
        intentions=Intentions(
            attitudes=AttitudesBeliefs(trust=0.5, risk_perception=0.6, self_efficacy=0.9,
                                       response_efficacy=0.8),
            motivation=Motivation(primary_task_pressure=0.5, perceived_consequences=0.7),
        ),
        capabilities=Capabilities(
            knowledge_to_act=0.9,
            cognitive_skill=0.85,
            memory_capacity=0.6,
        ),
    )
