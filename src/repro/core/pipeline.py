"""The shared stage-pipeline abstraction.

Both readings of the framework — the *analytic* walk in
:mod:`repro.core.analysis` (expected stage probabilities, end-to-end
success) and the *stochastic* walk in :mod:`repro.simulation.engine`
(realized outcomes for sampled receivers) — traverse the same pipeline:

    communication delivery → communication processing → application →
    intention gate → capability gate → behavior

This module is the single owner of that traversal.  A
:class:`PipelinePlan` is built once per (task, calibration, environment)
and answers every pipeline question both layers ask:

* which stages apply for the task's communication type (and which are
  deliberately skipped),
* the success probability of every stage and gate for a receiver — where
  ``receiver`` may be a scalar :class:`~repro.core.receiver.HumanReceiver`
  *or* a batch receiver view whose traits are numpy arrays, because the
  underlying model in :mod:`repro.core.probabilities` is polymorphic,
* the outcome semantics of a failure at each point (blocking
  communications fail safe, passive ones leave the receiver exposed,
  spoofed indicators defeat the receiver outright), and
* a scalar :meth:`PipelinePlan.walk` that realizes one receiver's pass
  given a source of stochastic decisions.

The calibration argument is duck-typed (anything that provides
``apply_stage`` / ``apply_intention`` / ``apply_capability`` and the
``override_given_misunderstanding`` / ``user_noise_std`` constants, such as
:class:`repro.simulation.calibration.StageCalibration`) so the core package
does not depend on the simulation package.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from . import probabilities
from .behavior import BehaviorOutcome
from .communication import ActivenessLevel, Communication
from .exceptions import ModelError
from .impediments import Environment
from .stages import STAGE_ORDER, Stage, StageOutcome, StageTrace
from .task import HumanSecurityTask

__all__ = [
    "FailureSemantics",
    "PRE_BEHAVIOR_STAGES",
    "failure_semantics",
    "failure_outcome",
    "failure_needs_override",
    "PipelineWalk",
    "PipelinePlan",
    "build_pipeline",
]

#: Pipeline stages evaluated before the behavior stage, in order.
PRE_BEHAVIOR_STAGES: Tuple[Stage, ...] = STAGE_ORDER[:-1]

#: Default constants used when no calibration is supplied (mirror the
#: neutral :class:`repro.simulation.calibration.StageCalibration`).
_DEFAULT_OVERRIDE_GIVEN_MISUNDERSTANDING = 0.3


class FailureSemantics(enum.Enum):
    """How a failure at a pipeline stage translates into an outcome.

    The semantics mirror the case studies (see the module docstring of
    :mod:`repro.simulation.engine`):

    * ``SAFE_IF_BLOCKING`` — attention-switch failures.  A blocking
      communication cannot really go unnoticed, so the hazard stays
      blocked; with a passive communication the receiver simply never
      acts.
    * ``OVERRIDE_OR_SAFE`` — failures while processing the communication
      (attention maintenance, comprehension, knowledge acquisition).
      With a blocking communication the confused receiver mostly fails
      safely (Egelman et al.: they retried the link and never reached the
      site) unless they find the override anyway; with a passive one any
      processing failure leaves them unprotected.
    * ``ALWAYS_FAILURE`` — retention/transfer failures (training and
      policy communications): the knowledge is simply not applied when
      the hazard arises, so the receiver is unprotected.
    """

    SAFE_IF_BLOCKING = "safe_if_blocking"
    OVERRIDE_OR_SAFE = "override_or_safe"
    ALWAYS_FAILURE = "always_failure"


_FAILURE_SEMANTICS: Dict[Stage, FailureSemantics] = {
    Stage.ATTENTION_SWITCH: FailureSemantics.SAFE_IF_BLOCKING,
    Stage.ATTENTION_MAINTENANCE: FailureSemantics.OVERRIDE_OR_SAFE,
    Stage.COMPREHENSION: FailureSemantics.OVERRIDE_OR_SAFE,
    Stage.KNOWLEDGE_ACQUISITION: FailureSemantics.OVERRIDE_OR_SAFE,
    Stage.KNOWLEDGE_RETENTION: FailureSemantics.ALWAYS_FAILURE,
    Stage.KNOWLEDGE_TRANSFER: FailureSemantics.ALWAYS_FAILURE,
}


def failure_semantics(stage: Stage) -> FailureSemantics:
    """The failure semantics of a pre-behavior pipeline stage."""
    if stage not in _FAILURE_SEMANTICS:
        raise ModelError(f"{stage} has no pre-behavior failure semantics")
    return _FAILURE_SEMANTICS[stage]


def failure_needs_override(stage: Stage, default_safe: bool) -> bool:
    """Whether resolving a failure at ``stage`` requires an override draw."""
    return default_safe and _FAILURE_SEMANTICS[stage] is FailureSemantics.OVERRIDE_OR_SAFE


def failure_outcome(stage: Stage, default_safe: bool, overrode: bool = False) -> BehaviorOutcome:
    """Translate a failed pipeline stage into a behavior outcome.

    ``overrode`` is only consulted for the override-or-safe stages of a
    blocking communication (see :func:`failure_needs_override`).
    """
    semantics = failure_semantics(stage)
    if semantics is FailureSemantics.SAFE_IF_BLOCKING:
        return BehaviorOutcome.FAILED_SAFE if default_safe else BehaviorOutcome.NO_ACTION
    if semantics is FailureSemantics.OVERRIDE_OR_SAFE and default_safe:
        return BehaviorOutcome.FAILURE if overrode else BehaviorOutcome.FAILED_SAFE
    return BehaviorOutcome.FAILURE


@dataclasses.dataclass
class PipelineWalk:
    """Result of realizing one receiver's pass through the pipeline."""

    outcome: BehaviorOutcome
    protected: bool
    trace: StageTrace
    failed_stage: Optional[Stage] = None
    intention_failed: bool = False
    capability_failed: bool = False
    spoofed: bool = False
    note: str = ""


#: A decision source for :meth:`PipelinePlan.walk`: called with the kind of
#: decision ("stage", "override", "intention", "capability", "behavior",
#: "self_initiated"), the stage involved (or ``None``), and the modeled
#: success probability; returns the realized boolean.
DecisionFn = Callable[[str, Optional[Stage], float], bool]


@dataclasses.dataclass(frozen=True)
class PipelinePlan:
    """The pipeline for one task: applicable stages, gates, and semantics."""

    task: HumanSecurityTask
    environment: Environment
    stages: Tuple[Stage, ...]
    skipped: Tuple[Stage, ...]
    default_safe: bool
    spoof_probability: float
    calibration: Optional[object] = None

    # -- structure ---------------------------------------------------------------

    @property
    def communication(self) -> Optional[Communication]:
        return self.task.communication

    @property
    def has_communication(self) -> bool:
        return self.task.communication is not None

    @property
    def user_noise_std(self) -> float:
        if self.calibration is None:
            return 0.0
        return self.calibration.user_noise_std

    @property
    def override_given_misunderstanding(self) -> float:
        if self.calibration is None:
            return _DEFAULT_OVERRIDE_GIVEN_MISUNDERSTANDING
        return self.calibration.override_given_misunderstanding

    # -- probabilities -----------------------------------------------------------
    #
    # Every method below is polymorphic in ``receiver`` (HumanReceiver or a
    # batch receiver view) and in ``noise`` (float or array): the returned
    # probability has the broadcast shape of its inputs.

    def raw_stage_probability(self, stage: Stage, receiver, exposures=None):
        """Uncalibrated, noise-free success probability of one stage.

        ``exposures`` (float or per-receiver array) overrides the
        communication's static habituation count for the attention-switch
        stage; other stages ignore it.  The multi-round engine threads the
        evolving per-receiver exposure state through here.
        """
        communication = self.task.communication
        if communication is None:
            raise ModelError("task has no communication; stages do not apply")
        if stage is Stage.ATTENTION_SWITCH:
            return probabilities.attention_switch_probability(
                communication, self.environment, receiver, exposures=exposures
            )
        if stage is Stage.ATTENTION_MAINTENANCE:
            return probabilities.attention_maintenance_probability(
                communication, self.environment, receiver
            )
        if stage is Stage.COMPREHENSION:
            return probabilities.comprehension_probability(communication, receiver)
        if stage is Stage.KNOWLEDGE_ACQUISITION:
            return probabilities.knowledge_acquisition_probability(communication, receiver)
        if stage is Stage.KNOWLEDGE_RETENTION:
            return probabilities.knowledge_retention_probability(communication, receiver)
        if stage is Stage.KNOWLEDGE_TRANSFER:
            return probabilities.knowledge_transfer_probability(communication, receiver)
        if stage is Stage.BEHAVIOR:
            return probabilities.behavior_success_probability(self.task.task_design, receiver)
        raise ModelError(f"unknown stage {stage!r}")

    def stage_probability(self, stage: Stage, receiver, noise=0.0, exposures=None):
        """Calibrated success probability of one stage, with per-user noise.

        The behavior stage models slips and lapses rather than perception,
        so the per-user perception noise is not applied to it (mirroring
        the original engine).  ``exposures`` is the optional dynamic
        habituation count (see :meth:`raw_stage_probability`).
        """
        raw = self.raw_stage_probability(stage, receiver, exposures=exposures)
        if stage is not Stage.BEHAVIOR:
            raw = probabilities.clamp_probability(raw + noise)
        if self.calibration is None:
            return raw
        return self.calibration.apply_stage(stage, raw)

    def intention_probability(self, receiver, noise=0.0):
        """Calibrated probability the receiver decides to comply."""
        communication = self.task.communication
        if communication is None:
            raise ModelError("task has no communication; the intention gate does not apply")
        raw = probabilities.clamp_probability(
            probabilities.intention_probability(communication, receiver) + noise
        )
        if self.calibration is None:
            return raw
        return self.calibration.apply_intention(raw)

    def capability_probability(self, receiver):
        """Calibrated probability the receiver can perform the action."""
        raw = probabilities.capability_probability(self.task, receiver)
        if self.calibration is None:
            return raw
        return self.calibration.apply_capability(raw)

    def behavior_probability(self, receiver):
        """Calibrated probability the action is executed correctly."""
        return self.stage_probability(Stage.BEHAVIOR, receiver)

    def self_initiated_probability(self, receiver):
        """With no communication, only self-motivated experts act."""
        return probabilities.clamp_probability(0.1 * receiver.personal_variables.expertise)

    def stage_probabilities(self, receiver) -> Dict[Stage, float]:
        """Success probability for every applicable stage (incl. behavior).

        With no calibration this reproduces the analytic reading used by
        :func:`repro.core.analysis.analyze_task`; a task without a
        communication yields an empty mapping.
        """
        if not self.has_communication:
            return {}
        result = {stage: self.stage_probability(stage, receiver) for stage in self.stages}
        result[Stage.BEHAVIOR] = self.behavior_probability(receiver)
        return result

    def success_probability(self, receiver):
        """End-to-end success probability including both gates."""
        if not self.has_communication:
            return self.self_initiated_probability(receiver)
        probability = 1.0
        for stage_probability in self.stage_probabilities(receiver).values():
            probability = probability * stage_probability
        probability = probability * self.intention_probability(receiver)
        probability = probability * self.capability_probability(receiver)
        # The individual factors are already floored, so the product is
        # strictly positive; only the ceiling is applied to avoid masking
        # real differences between long pipelines with low success.
        ceiling = np.minimum(probabilities._CEILING, probability)
        return float(ceiling) if np.ndim(ceiling) == 0 else ceiling

    # -- scalar traversal --------------------------------------------------------

    def walk(self, receiver, decide: DecisionFn, noise: float = 0.0,
             spoofed: bool = False, exposures: Optional[float] = None) -> PipelineWalk:
        """Realize one receiver's pass through the pipeline.

        ``decide`` supplies every stochastic decision; ``noise`` is the
        receiver's pre-drawn perception noise and ``spoofed`` whether the
        attacker already defeated the indicator.  ``exposures`` is this
        receiver's current habituation exposure count (``None`` keeps the
        communication's baked-in count) — the scalar reference mode of the
        multi-round engine passes the per-round value here.  The walk stops
        at the first failure, mirroring the way a receiver who never
        notices a warning can never comprehend it.
        """
        trace = StageTrace()

        if not self.has_communication:
            if decide("self_initiated", None, self.self_initiated_probability(receiver)):
                return PipelineWalk(
                    outcome=BehaviorOutcome.SUCCESS,
                    protected=True,
                    trace=trace,
                    note="self-initiated protective action (no communication)",
                )
            return PipelineWalk(
                outcome=BehaviorOutcome.NO_ACTION,
                protected=False,
                trace=trace,
                note="no communication; no protective action taken",
            )

        # Attacker spoofing defeats the receiver regardless of processing.
        if spoofed:
            return PipelineWalk(
                outcome=BehaviorOutcome.FAILURE,
                protected=False,
                trace=trace,
                spoofed=True,
                note="indicator spoofed by attacker",
            )

        for stage in self.skipped:
            trace.skip(stage)

        # -- pipeline stages -------------------------------------------------
        for stage in self.stages:
            probability = self.stage_probability(stage, receiver, noise, exposures=exposures)
            succeeded = decide("stage", stage, probability)
            trace.record(StageOutcome(stage=stage, succeeded=succeeded, probability=probability))
            if not succeeded:
                overrode = False
                if failure_needs_override(stage, self.default_safe):
                    overrode = decide("override", stage, self.override_given_misunderstanding)
                outcome = failure_outcome(stage, self.default_safe, overrode)
                return PipelineWalk(
                    outcome=outcome,
                    protected=outcome.hazard_avoided,
                    trace=trace,
                    failed_stage=stage,
                    note=f"failed at {stage.value}",
                )

        # -- intention gate ----------------------------------------------------
        if not decide("intention", None, self.intention_probability(receiver, noise)):
            # The receiver understood but decided not to comply: with a
            # blocking communication this means deliberately overriding.
            return PipelineWalk(
                outcome=BehaviorOutcome.FAILURE,
                protected=False,
                trace=trace,
                intention_failed=True,
                note="decided not to comply",
            )

        # -- capability gate ---------------------------------------------------
        if not decide("capability", None, self.capability_probability(receiver)):
            outcome = (
                BehaviorOutcome.FAILED_SAFE if self.default_safe else BehaviorOutcome.FAILURE
            )
            return PipelineWalk(
                outcome=outcome,
                protected=outcome.hazard_avoided,
                trace=trace,
                capability_failed=True,
                note="not capable of completing the action",
            )

        # -- behavior stage ----------------------------------------------------
        behavior_p = self.behavior_probability(receiver)
        behavior_ok = decide("behavior", Stage.BEHAVIOR, behavior_p)
        trace.record(
            StageOutcome(stage=Stage.BEHAVIOR, succeeded=behavior_ok, probability=behavior_p)
        )
        if behavior_ok:
            return PipelineWalk(
                outcome=BehaviorOutcome.SUCCESS,
                protected=True,
                trace=trace,
            )
        outcome = BehaviorOutcome.FAILED_SAFE if self.default_safe else BehaviorOutcome.FAILURE
        return PipelineWalk(
            outcome=outcome,
            protected=outcome.hazard_avoided,
            trace=trace,
            failed_stage=Stage.BEHAVIOR,
            note="behavior-stage error (slip, lapse, or execution gulf)",
        )


def build_pipeline(
    task: HumanSecurityTask,
    calibration: Optional[object] = None,
    environment: Optional[Environment] = None,
) -> PipelinePlan:
    """Build the pipeline plan for one task.

    Parameters
    ----------
    task:
        The human security task.
    calibration:
        Optional stage calibration (duck-typed; see module docstring).
        ``None`` yields the uncalibrated analytic reading.
    environment:
        Optional override of the task's impediment environment (the
        simulation engine passes the attacker-augmented environment here).
    """
    environment = environment if environment is not None else task.environment
    communication = task.communication
    applicability = probabilities.applicable_stages(communication)
    if communication is None:
        stages: Tuple[Stage, ...] = ()
        skipped: Tuple[Stage, ...] = ()
        default_safe = False
        spoof = 0.0
    else:
        stages = tuple(stage for stage in PRE_BEHAVIOR_STAGES if applicability[stage])
        skipped = tuple(stage for stage in PRE_BEHAVIOR_STAGES if not applicability[stage])
        default_safe = communication.activeness_level is ActivenessLevel.BLOCKING
        spoof = environment.spoof_probability
    return PipelinePlan(
        task=task,
        environment=environment,
        stages=stages,
        skipped=skipped,
        default_safe=default_safe,
        spoof_probability=spoof,
        calibration=calibration,
    )
