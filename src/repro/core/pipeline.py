"""The shared stage-pipeline abstraction.

Both readings of the framework — the *analytic* walk in
:mod:`repro.core.analysis` (expected stage probabilities, end-to-end
success) and the *stochastic* walk in :mod:`repro.simulation.engine`
(realized outcomes for sampled receivers) — traverse the same pipeline:

    communication delivery → communication processing → application →
    intention gate → capability gate → behavior

This module is the single owner of that traversal.  A
:class:`PipelinePlan` is built once per (task, calibration, environment)
and answers every pipeline question both layers ask:

* which stages apply for the task's communication type (and which are
  deliberately skipped),
* the success probability of every stage and gate for a receiver — where
  ``receiver`` may be a scalar :class:`~repro.core.receiver.HumanReceiver`
  *or* a batch receiver view whose traits are numpy arrays, because the
  underlying model in :mod:`repro.core.probabilities` is polymorphic,
* the outcome semantics of a failure at each point (blocking
  communications fail safe, passive ones leave the receiver exposed,
  spoofed indicators defeat the receiver outright), and
* **one traversal kernel** (:meth:`PipelinePlan.walk_batch`) that
  realizes receiver passes at any width.  The kernel is polymorphic over
  a :class:`DecisionSource`: the batch simulator feeds it a pre-drawn
  uniform matrix (:class:`MatrixDecisions`) and whole populations advance
  per stage; the scalar :meth:`PipelinePlan.walk` drives the *same*
  kernel at width 1 through :class:`CallbackDecisions`, which consults a
  lazy decision callback only for checkpoints the receiver actually
  reaches.  Both paths therefore share stage ordering, gate sequencing,
  and failure semantics by construction, and both emit the per-stage
  outcome data behind the funnel metrics — as a scalar
  :class:`~repro.core.stages.StageTrace` (via :func:`walk_from_row`) or a
  vectorized :class:`~repro.core.stages.StageTraceBatch`.

The calibration argument is duck-typed (anything that provides
``apply_stage`` / ``apply_intention`` / ``apply_capability`` and the
``override_given_misunderstanding`` / ``user_noise_std`` constants, such as
:class:`repro.simulation.calibration.StageCalibration`) so the core package
does not depend on the simulation package.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Callable, Dict, List, Optional, Protocol, Tuple, Union

import numpy as np

from . import probabilities
from .behavior import OUTCOME_ORDER, BehaviorOutcome, outcome_code
from .communication import ActivenessLevel, Communication
from .exceptions import ModelError
from .impediments import Environment
from .stages import (
    GATE_CHECKPOINTS,
    STAGE_ORDER,
    FunnelCounts,
    Stage,
    StageOutcome,
    StageTrace,
    StageTraceBatch,
)
from .receiver import FloatOrArray
from .task import HumanSecurityTask

#: The kernel is polymorphic in its receiver argument: a scalar
#: :class:`~repro.core.receiver.HumanReceiver` or a batch receiver view
#: (any object exposing the same attributes as arrays).  Structural
#: typing over that family is deliberate — the alias documents intent
#: without coupling core to the simulation package.
ReceiverLike = Any

__all__ = [
    "FailureSemantics",
    "PRE_BEHAVIOR_STAGES",
    "failure_semantics",
    "failure_outcome",
    "failure_needs_override",
    "decision_columns",
    "MatrixDecisions",
    "CallbackDecisions",
    "BatchWalk",
    "PipelineWalk",
    "walk_from_row",
    "PipelinePlan",
    "build_pipeline",
]

_HAZARD_AVOIDED = np.array([outcome.hazard_avoided for outcome in OUTCOME_ORDER])
_SUCCESS_CODE = outcome_code(BehaviorOutcome.SUCCESS)
_FAILURE_CODE = outcome_code(BehaviorOutcome.FAILURE)
_FAILED_SAFE_CODE = outcome_code(BehaviorOutcome.FAILED_SAFE)
_NO_ACTION_CODE = outcome_code(BehaviorOutcome.NO_ACTION)

#: Pipeline stages evaluated before the behavior stage, in order.
PRE_BEHAVIOR_STAGES: Tuple[Stage, ...] = STAGE_ORDER[:-1]

#: Default constants used when no calibration is supplied (mirror the
#: neutral :class:`repro.simulation.calibration.StageCalibration`).
_DEFAULT_OVERRIDE_GIVEN_MISUNDERSTANDING = 0.3


class FailureSemantics(enum.Enum):
    """How a failure at a pipeline stage translates into an outcome.

    The semantics mirror the case studies (see the module docstring of
    :mod:`repro.simulation.engine`):

    * ``SAFE_IF_BLOCKING`` — attention-switch failures.  A blocking
      communication cannot really go unnoticed, so the hazard stays
      blocked; with a passive communication the receiver simply never
      acts.
    * ``OVERRIDE_OR_SAFE`` — failures while processing the communication
      (attention maintenance, comprehension, knowledge acquisition).
      With a blocking communication the confused receiver mostly fails
      safely (Egelman et al.: they retried the link and never reached the
      site) unless they find the override anyway; with a passive one any
      processing failure leaves them unprotected.
    * ``ALWAYS_FAILURE`` — retention/transfer failures (training and
      policy communications): the knowledge is simply not applied when
      the hazard arises, so the receiver is unprotected.
    """

    SAFE_IF_BLOCKING = "safe_if_blocking"
    OVERRIDE_OR_SAFE = "override_or_safe"
    ALWAYS_FAILURE = "always_failure"


_FAILURE_SEMANTICS: Dict[Stage, FailureSemantics] = {
    Stage.ATTENTION_SWITCH: FailureSemantics.SAFE_IF_BLOCKING,
    Stage.ATTENTION_MAINTENANCE: FailureSemantics.OVERRIDE_OR_SAFE,
    Stage.COMPREHENSION: FailureSemantics.OVERRIDE_OR_SAFE,
    Stage.KNOWLEDGE_ACQUISITION: FailureSemantics.OVERRIDE_OR_SAFE,
    Stage.KNOWLEDGE_RETENTION: FailureSemantics.ALWAYS_FAILURE,
    Stage.KNOWLEDGE_TRANSFER: FailureSemantics.ALWAYS_FAILURE,
}


def failure_semantics(stage: Stage) -> FailureSemantics:
    """The failure semantics of a pre-behavior pipeline stage."""
    if stage not in _FAILURE_SEMANTICS:
        raise ModelError(f"{stage} has no pre-behavior failure semantics")
    return _FAILURE_SEMANTICS[stage]


def failure_needs_override(stage: Stage, default_safe: bool) -> bool:
    """Whether resolving a failure at ``stage`` requires an override draw."""
    return default_safe and _FAILURE_SEMANTICS[stage] is FailureSemantics.OVERRIDE_OR_SAFE


def failure_outcome(stage: Stage, default_safe: bool, overrode: bool = False) -> BehaviorOutcome:
    """Translate a failed pipeline stage into a behavior outcome.

    ``overrode`` is only consulted for the override-or-safe stages of a
    blocking communication (see :func:`failure_needs_override`).
    """
    semantics = failure_semantics(stage)
    if semantics is FailureSemantics.SAFE_IF_BLOCKING:
        return BehaviorOutcome.FAILED_SAFE if default_safe else BehaviorOutcome.NO_ACTION
    if semantics is FailureSemantics.OVERRIDE_OR_SAFE and default_safe:
        return BehaviorOutcome.FAILURE if overrode else BehaviorOutcome.FAILED_SAFE
    return BehaviorOutcome.FAILURE


@dataclasses.dataclass
class PipelineWalk:
    """Result of realizing one receiver's pass through the pipeline."""

    outcome: BehaviorOutcome
    protected: bool
    trace: StageTrace
    failed_stage: Optional[Stage] = None
    intention_failed: bool = False
    capability_failed: bool = False
    spoofed: bool = False
    note: str = ""


#: A decision source for :meth:`PipelinePlan.walk`: called with the kind of
#: decision ("stage", "override", "intention", "capability", "behavior",
#: "self_initiated"), the stage involved (or ``None``), and the modeled
#: success probability; returns the realized boolean.
DecisionFn = Callable[[str, Optional[Stage], float], bool]


def decision_columns(plan: "PipelinePlan") -> Dict[str, int]:
    """Column index of every decision in a pre-drawn uniform matrix.

    The shared draw layout both engine modes consume (one row per
    receiver): one column per applicable pre-behavior stage in pipeline
    order, then the override draw, the intention gate, the capability
    gate, and the behavior stage.  A task with no communication has a
    single column — the self-initiated-action draw.
    """
    if not plan.has_communication:
        return {"self_initiated": 0}
    columns = {f"stage:{stage.value}": index for index, stage in enumerate(plan.stages)}
    offset = len(plan.stages)
    columns["override"] = offset
    columns["intention"] = offset + 1
    columns["capability"] = offset + 2
    columns["behavior"] = offset + 3
    return columns


class DecisionSource(Protocol):
    """Structural type of the kernel's decision suppliers.

    Anything with this ``decide`` shape can drive :meth:`PipelinePlan._traverse`
    — the pre-drawn matrix, the lazy scalar callback, and the counter-based
    Philox source all satisfy it.
    """

    def decide(
        self,
        kind: str,
        stage: Optional[Stage],
        probability: FloatOrArray,
        mask: np.ndarray,
    ) -> np.ndarray:
        ...


class MatrixDecisions:
    """Decision source backed by a pre-drawn uniform matrix.

    Decisions are positional — column ``k`` of :func:`decision_columns`
    realizes checkpoint ``k`` for every receiver at once — so the
    ``mask`` of lanes that actually reached a checkpoint is ignored:
    values of unreached lanes are computed and discarded, never read.
    """

    def __init__(self, decisions: np.ndarray, columns: Dict[str, int]) -> None:
        self._decisions = decisions
        self._columns = columns

    def decide(
        self,
        kind: str,
        stage: Optional[Stage],
        probability: FloatOrArray,
        mask: np.ndarray,
    ) -> np.ndarray:
        column = self._columns[f"stage:{stage.value}" if kind == "stage" else kind]
        return self._decisions[:, column] < probability


class CallbackDecisions:
    """Width-1 decision source over a lazy scalar :data:`DecisionFn`.

    Consults the callback *only* when the single lane actually reached
    the checkpoint, so callers that draw randomness on demand (e.g.
    :meth:`repro.simulation.engine.HumanLoopSimulator.simulate_receiver`)
    consume exactly one draw per evaluated checkpoint, in pipeline order —
    the historical scalar-walk contract.
    """

    def __init__(self, decide: DecisionFn) -> None:
        self._decide = decide

    def decide(
        self,
        kind: str,
        stage: Optional[Stage],
        probability: FloatOrArray,
        mask: np.ndarray,
    ) -> np.ndarray:
        if not bool(np.all(mask)):
            return np.zeros(1, dtype=bool)
        # The modeled probability may arrive as a float or a width-1 array;
        # the callback contract is a plain float either way.
        return np.array([bool(self._decide(kind, stage, float(np.ravel(probability)[0])))])


@dataclasses.dataclass(frozen=True)
class BatchWalk:
    """Realized traversal of one batch as a struct of arrays.

    The traversal kernel's result at any width (the scalar walk is the
    width-1 case).  ``outcome_codes`` indexes
    :data:`~repro.core.behavior.OUTCOME_ORDER`; ``failed_stage_index``
    holds the :data:`~repro.core.stages.STAGE_ORDER` index of the first
    failed stage, or ``-1``.  ``stage_probabilities`` and
    ``stage_success`` (per applicable pre-behavior stage, in plan order)
    are retained so per-receiver records can be materialized without
    recomputing the model; columns past a receiver's first failure are
    unevaluated and must not be read.  ``trace`` carries the per-receiver
    funnel checkpoint arrays when the caller asked for them;
    ``funnel_counts`` the counts-only reduction when the caller asked for
    that instead (``trace="counts"`` — the engine's streaming-funnel hot
    path, which never needs the per-receiver matrices).
    """

    plan: "PipelinePlan"
    outcome_codes: np.ndarray
    protected: np.ndarray
    spoofed: np.ndarray
    intention_failed: np.ndarray
    capability_failed: np.ndarray
    failed_stage_index: np.ndarray
    attention_evaluated: np.ndarray
    attention_succeeded: np.ndarray
    stage_probabilities: Optional[np.ndarray] = None
    stage_success: Optional[np.ndarray] = None
    behavior_probability: Optional[np.ndarray] = None
    trace: Optional[StageTraceBatch] = None
    funnel_counts: Optional[FunnelCounts] = None

    @property
    def count(self) -> int:
        return int(self.outcome_codes.shape[0])


def walk_from_row(outcomes: BatchWalk, row: int) -> PipelineWalk:
    """Materialize one lane of a :class:`BatchWalk` as a scalar walk.

    The single source of the scalar trace, note strings, and failure
    flags: the scalar :meth:`PipelinePlan.walk` and the simulation
    layer's record materialization both go through here, so the two
    presentations cannot drift apart.
    """
    plan = outcomes.plan
    outcome = OUTCOME_ORDER[int(outcomes.outcome_codes[row])]
    trace = StageTrace()
    failed_stage: Optional[Stage] = None
    note = ""

    if not plan.has_communication:
        note = (
            "self-initiated protective action (no communication)"
            if outcome is BehaviorOutcome.SUCCESS
            else "no communication; no protective action taken"
        )
    elif outcomes.spoofed[row]:
        note = "indicator spoofed by attacker"
    else:
        for stage in plan.skipped:
            trace.skip(stage)
        for column, stage in enumerate(plan.stages):
            succeeded = bool(outcomes.stage_success[row, column])
            trace.record(
                StageOutcome(
                    stage=stage,
                    succeeded=succeeded,
                    probability=float(outcomes.stage_probabilities[row, column]),
                )
            )
            if not succeeded:
                failed_stage = stage
                note = f"failed at {stage.value}"
                break
        else:
            if outcomes.intention_failed[row]:
                note = "decided not to comply"
            elif outcomes.capability_failed[row]:
                note = "not capable of completing the action"
            else:
                behavior_ok = outcome is BehaviorOutcome.SUCCESS
                trace.record(
                    StageOutcome(
                        stage=Stage.BEHAVIOR,
                        succeeded=behavior_ok,
                        probability=float(outcomes.behavior_probability[row]),
                    )
                )
                if not behavior_ok:
                    failed_stage = Stage.BEHAVIOR
                    note = "behavior-stage error (slip, lapse, or execution gulf)"

    return PipelineWalk(
        outcome=outcome,
        protected=bool(outcomes.protected[row]),
        trace=trace,
        failed_stage=failed_stage,
        intention_failed=bool(outcomes.intention_failed[row]),
        capability_failed=bool(outcomes.capability_failed[row]),
        spoofed=bool(outcomes.spoofed[row]),
        note=note,
    )


@dataclasses.dataclass(frozen=True)
class PipelinePlan:
    """The pipeline for one task: applicable stages, gates, and semantics."""

    task: HumanSecurityTask
    environment: Environment
    stages: Tuple[Stage, ...]
    skipped: Tuple[Stage, ...]
    default_safe: bool
    spoof_probability: float
    calibration: Optional[object] = None

    # -- structure ---------------------------------------------------------------

    @property
    def communication(self) -> Optional[Communication]:
        return self.task.communication

    @property
    def has_communication(self) -> bool:
        return self.task.communication is not None

    @property
    def user_noise_std(self) -> float:
        if self.calibration is None:
            return 0.0
        return self.calibration.user_noise_std

    @property
    def override_given_misunderstanding(self) -> float:
        if self.calibration is None:
            return _DEFAULT_OVERRIDE_GIVEN_MISUNDERSTANDING
        return self.calibration.override_given_misunderstanding

    # -- probabilities -----------------------------------------------------------
    #
    # Every method below is polymorphic in ``receiver`` (HumanReceiver or a
    # batch receiver view) and in ``noise`` (float or array): the returned
    # probability has the broadcast shape of its inputs.

    def raw_stage_probability(
        self,
        stage: Stage,
        receiver: ReceiverLike,
        exposures: Optional[FloatOrArray] = None,
    ) -> FloatOrArray:
        """Uncalibrated, noise-free success probability of one stage.

        ``exposures`` (float or per-receiver array) overrides the
        communication's static habituation count for the attention-switch
        stage; other stages ignore it.  The multi-round engine threads the
        evolving per-receiver exposure state through here.
        """
        communication = self.task.communication
        if communication is None:
            raise ModelError("task has no communication; stages do not apply")
        if stage is Stage.ATTENTION_SWITCH:
            return probabilities.attention_switch_probability(
                communication, self.environment, receiver, exposures=exposures
            )
        if stage is Stage.ATTENTION_MAINTENANCE:
            return probabilities.attention_maintenance_probability(
                communication, self.environment, receiver
            )
        if stage is Stage.COMPREHENSION:
            return probabilities.comprehension_probability(communication, receiver)
        if stage is Stage.KNOWLEDGE_ACQUISITION:
            return probabilities.knowledge_acquisition_probability(communication, receiver)
        if stage is Stage.KNOWLEDGE_RETENTION:
            return probabilities.knowledge_retention_probability(communication, receiver)
        if stage is Stage.KNOWLEDGE_TRANSFER:
            return probabilities.knowledge_transfer_probability(communication, receiver)
        if stage is Stage.BEHAVIOR:
            return probabilities.behavior_success_probability(self.task.task_design, receiver)
        raise ModelError(f"unknown stage {stage!r}")

    def stage_probability(
        self,
        stage: Stage,
        receiver: ReceiverLike,
        noise: FloatOrArray = 0.0,
        exposures: Optional[FloatOrArray] = None,
    ) -> FloatOrArray:
        """Calibrated success probability of one stage, with per-user noise.

        The behavior stage models slips and lapses rather than perception,
        so the per-user perception noise is not applied to it (mirroring
        the original engine).  ``exposures`` is the optional dynamic
        habituation count (see :meth:`raw_stage_probability`).
        """
        raw = self.raw_stage_probability(stage, receiver, exposures=exposures)
        if stage is not Stage.BEHAVIOR:
            raw = probabilities.clamp_probability(raw + noise)
        if self.calibration is None:
            return raw
        return self.calibration.apply_stage(stage, raw)

    def intention_probability(
        self, receiver: ReceiverLike, noise: FloatOrArray = 0.0
    ) -> FloatOrArray:
        """Calibrated probability the receiver decides to comply."""
        communication = self.task.communication
        if communication is None:
            raise ModelError("task has no communication; the intention gate does not apply")
        raw = probabilities.clamp_probability(
            probabilities.intention_probability(communication, receiver) + noise
        )
        if self.calibration is None:
            return raw
        return self.calibration.apply_intention(raw)

    def capability_probability(self, receiver: ReceiverLike) -> FloatOrArray:
        """Calibrated probability the receiver can perform the action."""
        raw = probabilities.capability_probability(self.task, receiver)
        if self.calibration is None:
            return raw
        return self.calibration.apply_capability(raw)

    def behavior_probability(self, receiver: ReceiverLike) -> FloatOrArray:
        """Calibrated probability the action is executed correctly."""
        return self.stage_probability(Stage.BEHAVIOR, receiver)

    def self_initiated_probability(self, receiver: ReceiverLike) -> FloatOrArray:
        """With no communication, only self-motivated experts act."""
        return probabilities.clamp_probability(0.1 * receiver.personal_variables.expertise)

    def stage_probabilities(self, receiver: ReceiverLike) -> Dict[Stage, float]:
        """Success probability for every applicable stage (incl. behavior).

        With no calibration this reproduces the analytic reading used by
        :func:`repro.core.analysis.analyze_task`; a task without a
        communication yields an empty mapping.
        """
        if not self.has_communication:
            return {}
        result = {stage: self.stage_probability(stage, receiver) for stage in self.stages}
        result[Stage.BEHAVIOR] = self.behavior_probability(receiver)
        return result

    def success_probability(self, receiver: ReceiverLike) -> FloatOrArray:
        """End-to-end success probability including both gates."""
        if not self.has_communication:
            return self.self_initiated_probability(receiver)
        probability = 1.0
        for stage_probability in self.stage_probabilities(receiver).values():
            probability = probability * stage_probability
        probability = probability * self.intention_probability(receiver)
        probability = probability * self.capability_probability(receiver)
        # The individual factors are already floored, so the product is
        # strictly positive; only the ceiling is applied to avoid masking
        # real differences between long pipelines with low success.
        ceiling = np.minimum(probabilities._CEILING, probability)
        return float(ceiling) if np.ndim(ceiling) == 0 else ceiling

    # -- traversal kernel --------------------------------------------------------

    def _slot_tables(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Plan-constant per-slot lookup tables, built once per plan.

        ``(base_codes, needs_override, slot_stage_index)`` — one entry per
        applicable pre-behavior stage plus a sentinel slot (never read for
        a failing receiver; it just keeps the fancy-indexing in bounds).
        Cached on the (frozen) plan because reference mode runs the kernel
        once per receiver per round.
        """
        cached = self.__dict__.get("_slot_table_cache")
        if cached is None:
            base_codes = np.array(
                [
                    outcome_code(failure_outcome(stage, self.default_safe, overrode=False))
                    for stage in self.stages
                ]
                + [_SUCCESS_CODE]
            )
            needs_override = np.array(
                [failure_needs_override(stage, self.default_safe) for stage in self.stages]
                + [False]
            )
            slot_stage_index = np.array([stage.index for stage in self.stages] + [-1])
            cached = (base_codes, needs_override, slot_stage_index)
            object.__setattr__(self, "_slot_table_cache", cached)
        return cached

    def _decision_columns(self) -> Dict[str, int]:
        """Cached :func:`decision_columns` of this plan."""
        cached = self.__dict__.get("_decision_column_cache")
        if cached is None:
            cached = decision_columns(self)
            object.__setattr__(self, "_decision_column_cache", cached)
        return cached

    def _traverse(
        self,
        receivers: ReceiverLike,
        source: "DecisionSource",
        count: int,
        spoofed: np.ndarray,
        noise: FloatOrArray,
        exposures: Optional[FloatOrArray] = None,
        collect_trace: bool = False,
        collect_counts: bool = False,
    ) -> BatchWalk:
        """The single stage-traversal kernel, at any width.

        ``receivers`` is a scalar :class:`~repro.core.receiver.HumanReceiver`
        or a batch receiver view (the probability model is polymorphic);
        ``source`` supplies realized decisions per checkpoint (see
        :class:`MatrixDecisions` / :class:`CallbackDecisions`); ``spoofed``
        is the per-lane attacker mask.  The stage loop exits as soon as no
        lane is still alive — at width 1 that reproduces the historical
        early-exit scalar walk exactly (a receiver who never notices a
        warning never evaluates comprehension); at width N it simply skips
        model calls no lane would read.  ``collect_trace`` emits the full
        per-receiver :class:`StageTraceBatch`; ``collect_counts`` the
        counts-only :class:`FunnelCounts` reduction, folded from masks the
        traversal already holds (no per-receiver checkpoint matrices).
        """
        false = np.zeros(count, dtype=bool)

        if not self.has_communication:
            ones = np.ones(count, dtype=bool)
            acted = np.asarray(
                source.decide(
                    "self_initiated", None, self.self_initiated_probability(receivers), ones
                ),
                dtype=bool,
            )
            trace = None
            if collect_trace:
                trace = StageTraceBatch(
                    labels=("self_initiated",),
                    stages=(),
                    skipped=(),
                    entered=ones[:, None].copy(),
                    passed=acted[:, None].copy(),
                    spoofed=false.copy(),
                )
            funnel_counts = None
            if collect_counts:
                funnel_counts = FunnelCounts(
                    labels=("self_initiated",),
                    entered=(count,),
                    passed=(int(np.count_nonzero(acted)),),
                    n=count,
                    spoofed=0,
                )
            return BatchWalk(
                plan=self,
                outcome_codes=np.where(acted, _SUCCESS_CODE, _NO_ACTION_CODE).astype(np.int64),
                protected=acted.copy(),
                spoofed=false,
                intention_failed=false,
                capability_failed=false,
                failed_stage_index=np.full(count, -1),
                attention_evaluated=false,
                attention_succeeded=false,
                trace=trace,
                funnel_counts=funnel_counts,
            )

        stage_count = len(self.stages)
        live = ~spoofed

        # -- pipeline stages: one model call per stage covers every lane, and
        # the loop stops once every lane is spoofed or has already failed.
        stage_probabilities = np.zeros((count, stage_count))
        stage_success = np.zeros((count, stage_count), dtype=bool)
        first_failed_slot = np.full(count, stage_count)  # sentinel: no failure
        alive = live.copy()
        for column, stage in enumerate(self.stages):
            if not alive.any():
                break
            probability = self.stage_probability(stage, receivers, noise, exposures=exposures)
            ok = np.asarray(
                source.decide("stage", stage, probability, alive), dtype=bool
            )
            stage_probabilities[:, column] = probability
            stage_success[:, column] = ok
            newly_failed = alive & ~ok
            first_failed_slot[newly_failed] = column
            alive &= ok

        base_codes, needs_override, slot_stage_index = self._slot_tables()

        stage_fail = live & (first_failed_slot < stage_count)
        override_mask = stage_fail & needs_override[first_failed_slot]
        if override_mask.any():
            # At width 1 the failing stage is unambiguous; pass it through so
            # the scalar DecisionFn contract (decide("override", <failed
            # stage>, p)) survives the kernel unification.  Wider batches
            # have one override column for many stages, so the source gets
            # None there (MatrixDecisions never reads it for overrides).
            override_stage = (
                self.stages[int(first_failed_slot[0])] if count == 1 else None
            )
            overrode = np.asarray(
                source.decide(
                    "override",
                    override_stage,
                    self.override_given_misunderstanding,
                    override_mask,
                ),
                dtype=bool,
            )
        else:
            overrode = false
        fail_codes = np.where(
            needs_override[first_failed_slot] & overrode,
            _FAILURE_CODE,
            base_codes[first_failed_slot],
        )

        # -- gates and behavior, masked to the lanes that reached them --------
        passed_stages = live & (first_failed_slot == stage_count)
        intention_ok = (
            np.asarray(
                source.decide(
                    "intention", None, self.intention_probability(receivers, noise),
                    passed_stages,
                ),
                dtype=bool,
            )
            if passed_stages.any()
            else false
        )
        intention_failed = passed_stages & ~intention_ok
        capability_mask = passed_stages & intention_ok
        capability_ok = (
            np.asarray(
                source.decide(
                    "capability", None, self.capability_probability(receivers),
                    capability_mask,
                ),
                dtype=bool,
            )
            if capability_mask.any()
            else false
        )
        capability_failed = capability_mask & ~capability_ok
        behavior_mask = capability_mask & capability_ok
        if behavior_mask.any():
            behavior_probability = np.broadcast_to(
                np.asarray(self.behavior_probability(receivers), dtype=float), (count,)
            )
            behavior_ok = np.asarray(
                source.decide(
                    "behavior", Stage.BEHAVIOR, behavior_probability, behavior_mask
                ),
                dtype=bool,
            )
        else:
            behavior_probability = np.zeros(count)
            behavior_ok = false
        behavior_failed = behavior_mask & ~behavior_ok
        succeeded = behavior_mask & behavior_ok

        gate_fail_code = _FAILED_SAFE_CODE if self.default_safe else _FAILURE_CODE

        outcome_codes = np.empty(count, dtype=np.int64)
        outcome_codes[spoofed] = _FAILURE_CODE
        outcome_codes[stage_fail] = fail_codes[stage_fail]
        outcome_codes[intention_failed] = _FAILURE_CODE
        outcome_codes[capability_failed] = gate_fail_code
        outcome_codes[behavior_failed] = gate_fail_code
        outcome_codes[succeeded] = _SUCCESS_CODE

        failed_stage_index = np.full(count, -1)
        failed_stage_index[stage_fail] = slot_stage_index[first_failed_slot][stage_fail]
        failed_stage_index[behavior_failed] = Stage.BEHAVIOR.index

        if Stage.ATTENTION_SWITCH in self.stages:
            attention_column = self.stages.index(Stage.ATTENTION_SWITCH)
            attention_evaluated = live.copy()
            attention_succeeded = live & stage_success[:, attention_column]
        else:  # pragma: no cover - every communication evaluates attention
            attention_evaluated = false
            attention_succeeded = false

        trace = None
        if collect_trace:
            labels = tuple(stage.value for stage in self.stages) + GATE_CHECKPOINTS
            entered = np.zeros((count, len(labels)), dtype=bool)
            passed = np.zeros((count, len(labels)), dtype=bool)
            for column in range(stage_count):
                entered[:, column] = live & (first_failed_slot >= column)
                passed[:, column] = live & (first_failed_slot > column)
            entered[:, stage_count] = passed_stages
            passed[:, stage_count] = capability_mask  # passed_stages & intention_ok
            entered[:, stage_count + 1] = capability_mask
            passed[:, stage_count + 1] = behavior_mask
            entered[:, stage_count + 2] = behavior_mask
            passed[:, stage_count + 2] = succeeded
            trace = StageTraceBatch(
                labels=labels,
                stages=self.stages,
                skipped=self.skipped,
                entered=entered,
                passed=passed,
                spoofed=spoofed.copy(),
            )

        funnel_counts = None
        if collect_counts:
            # The fused funnel: stage columns reduce to "live minus the
            # failures before me" (one bincount over failing lanes), gate
            # columns to the mask counts the traversal already derived.
            # Identical integers to StageTraceBatch.counts(), by the same
            # first_failed_slot/mask definitions.
            labels = tuple(stage.value for stage in self.stages) + GATE_CHECKPOINTS
            fails = np.bincount(
                first_failed_slot[stage_fail], minlength=stage_count
            )
            entered_counts: List[int] = []
            passed_counts: List[int] = []
            remaining = int(np.count_nonzero(live))
            for column in range(stage_count):
                entered_counts.append(remaining)
                remaining -= int(fails[column])
                passed_counts.append(remaining)
            capability_entered = int(np.count_nonzero(capability_mask))
            behavior_entered = int(np.count_nonzero(behavior_mask))
            entered_counts += [remaining, capability_entered, behavior_entered]
            passed_counts += [
                capability_entered,
                behavior_entered,
                int(np.count_nonzero(succeeded)),
            ]
            funnel_counts = FunnelCounts(
                labels=labels,
                entered=tuple(entered_counts),
                passed=tuple(passed_counts),
                n=count,
                spoofed=int(np.count_nonzero(spoofed)),
            )

        return BatchWalk(
            plan=self,
            outcome_codes=outcome_codes,
            protected=_HAZARD_AVOIDED[outcome_codes],
            spoofed=spoofed,
            intention_failed=intention_failed,
            capability_failed=capability_failed,
            failed_stage_index=failed_stage_index,
            attention_evaluated=attention_evaluated,
            attention_succeeded=attention_succeeded,
            stage_probabilities=stage_probabilities,
            stage_success=stage_success,
            behavior_probability=behavior_probability,
            trace=trace,
            funnel_counts=funnel_counts,
        )

    def walk_batch(
        self,
        receivers: ReceiverLike,
        decisions: np.ndarray,
        spoofed: Optional[np.ndarray] = None,
        noise: FloatOrArray = 0.0,
        exposures: Optional[FloatOrArray] = None,
        trace: Union[bool, str] = False,
    ) -> BatchWalk:
        """Advance a whole batch through the pipeline at once (the array walk).

        ``decisions`` is a pre-drawn uniform matrix laid out by
        :func:`decision_columns`; ``spoofed`` the per-receiver attacker
        mask (``None`` — nobody spoofed); ``noise`` the per-receiver
        perception noise; ``exposures`` the optional dynamic habituation
        counts for the attention-switch stage.  ``trace=True`` additionally
        collects the per-receiver funnel checkpoint arrays;
        ``trace="counts"`` only their column totals (the fused
        :class:`~repro.core.stages.FunnelCounts` path — what the engine's
        streaming funnel consumes, at near trace-off cost).
        """
        count = int(decisions.shape[0])
        if spoofed is None:
            spoofed = np.zeros(count, dtype=bool)
        source = MatrixDecisions(decisions, self._decision_columns())
        return self._traverse(
            receivers,
            source,
            count,
            np.asarray(spoofed, dtype=bool),
            noise,
            exposures=exposures,
            collect_trace=trace is True,
            collect_counts=trace == "counts",
        )

    def walk(self, receiver: ReceiverLike, decide: DecisionFn, noise: float = 0.0,
             spoofed: bool = False, exposures: Optional[float] = None) -> PipelineWalk:
        """Realize one receiver's pass through the pipeline.

        The width-1 case of the shared traversal kernel: ``decide``
        supplies every stochastic decision (consulted lazily, only for
        checkpoints the receiver actually reaches); ``noise`` is the
        receiver's pre-drawn perception noise and ``spoofed`` whether the
        attacker already defeated the indicator.  ``exposures`` is this
        receiver's current habituation exposure count (``None`` keeps the
        communication's baked-in count).  The walk stops at the first
        failure, mirroring the way a receiver who never notices a warning
        can never comprehend it.
        """
        result = self._traverse(
            receiver,
            CallbackDecisions(decide),
            1,
            np.array([bool(spoofed)]),
            noise,
            exposures=exposures,
            collect_trace=False,
        )
        return walk_from_row(result, 0)


def build_pipeline(
    task: HumanSecurityTask,
    calibration: Optional[object] = None,
    environment: Optional[Environment] = None,
) -> PipelinePlan:
    """Build the pipeline plan for one task.

    Parameters
    ----------
    task:
        The human security task.
    calibration:
        Optional stage calibration (duck-typed; see module docstring).
        ``None`` yields the uncalibrated analytic reading.
    environment:
        Optional override of the task's impediment environment (the
        simulation engine passes the attacker-augmented environment here).
    """
    environment = environment if environment is not None else task.environment
    communication = task.communication
    applicability = probabilities.applicable_stages(communication)
    if communication is None:
        stages: Tuple[Stage, ...] = ()
        skipped: Tuple[Stage, ...] = ()
        default_safe = False
        spoof = 0.0
    else:
        stages = tuple(stage for stage in PRE_BEHAVIOR_STAGES if applicability[stage])
        skipped = tuple(stage for stage in PRE_BEHAVIOR_STAGES if not applicability[stage])
        default_safe = communication.activeness_level is ActivenessLevel.BLOCKING
        spoof = environment.spoof_probability
    return PipelinePlan(
        task=task,
        environment=environment,
        stages=stages,
        skipped=skipped,
        default_safe=default_safe,
        spoof_probability=spoof,
        calibration=calibration,
    )
