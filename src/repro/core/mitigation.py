"""Failure mitigation: strategies and a recommendation engine.

The failure-mitigation step of the Figure-2 process "tries to find ways to
prevent failures by determining how humans might be better supported in
performing these tasks".  Section 3 and Section 5 of the paper enumerate
the kinds of support available — automation, better-designed warnings,
decision support, training, workflow-compatible task design, incentives —
and the case studies rank them for two concrete systems.

This module defines:

* :class:`MitigationStrategy` — the three high-level strategies of
  Section 5 (get the human out of the loop, make the task easy and
  intuitive, teach the human), plus the incentive lever the motivation
  discussion adds,
* :class:`Mitigation` — one concrete mitigation, tagged with the framework
  components and failure kinds it addresses, and
* :func:`suggest_mitigations` — a rule-based engine mapping an identified
  failure inventory to a ranked list of applicable mitigations.

The full catalog of concrete mitigations (single sign-on, password vaults,
anti-phishing training games, warning redesign, ...) lives in
:mod:`repro.mitigations.catalog`; this module provides the framework-level
vocabulary and the generic suggestion rules.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .components import Component, ComponentGroup
from .exceptions import ModelError
from .failure import FailureInventory, FailureMode

__all__ = [
    "MitigationStrategy",
    "Mitigation",
    "MitigationPlan",
    "GENERIC_MITIGATIONS",
    "suggest_mitigations",
]


class MitigationStrategy(enum.Enum):
    """High-level strategies for reducing human security failures."""

    AUTOMATE = "automate"
    SUPPORT = "support"
    TRAIN = "train"
    MOTIVATE = "motivate"

    @property
    def description(self) -> str:
        return _STRATEGY_DESCRIPTIONS[self]


_STRATEGY_DESCRIPTIONS: Dict[MitigationStrategy, str] = {
    MitigationStrategy.AUTOMATE: (
        "Get the human out of the loop: automate the function or replace the "
        "decision with a well-chosen default."
    ),
    MitigationStrategy.SUPPORT: (
        "Engineer the human task so it is intuitive and easy to perform "
        "successfully: better warnings, decision support, feedback, fewer steps."
    ),
    MitigationStrategy.TRAIN: (
        "Teach humans how to perform the security-critical task and correct "
        "inaccurate mental models."
    ),
    MitigationStrategy.MOTIVATE: (
        "Align incentives: reduce the burden of compliance, explain consequences, "
        "and reward or require compliance within an organization."
    ),
}


@dataclasses.dataclass(frozen=True)
class Mitigation:
    """A concrete mitigation for one or more failure modes.

    Attributes
    ----------
    name:
        Short identifier, e.g. ``"single-sign-on"``.
    strategy:
        Which of the high-level strategies this mitigation belongs to.
    description:
        What the mitigation does.
    addresses_components:
        Framework components whose failures this mitigation targets.
    effectiveness:
        Expected reduction in the targeted failures' likelihood (0–1).
    cost:
        Relative deployment cost/disruption (0–1); used as a tie-breaker.
    residual_risks:
        New or remaining risks introduced by the mitigation (e.g. a single
        sign-on system concentrates risk in one credential).
    """

    name: str
    strategy: MitigationStrategy
    description: str
    addresses_components: Tuple[Component, ...]
    effectiveness: float = 0.5
    cost: float = 0.3
    residual_risks: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("mitigation name must be non-empty")
        if not 0.0 <= self.effectiveness <= 1.0:
            raise ModelError("effectiveness must be in [0, 1]")
        if not 0.0 <= self.cost <= 1.0:
            raise ModelError("cost must be in [0, 1]")
        if not self.addresses_components:
            raise ModelError(f"mitigation {self.name!r} must address at least one component")

    def addresses(self, failure: FailureMode) -> bool:
        """Whether this mitigation targets the component of ``failure``."""
        return failure.component in self.addresses_components

    def priority_score(self, addressed_risk: float) -> float:
        """Ranking score: risk addressed × effectiveness, discounted by cost."""
        return addressed_risk * self.effectiveness * (1.0 - 0.3 * self.cost)


@dataclasses.dataclass
class MitigationPlan:
    """A ranked set of mitigations recommended for a failure inventory."""

    recommendations: List[Tuple[Mitigation, float]] = dataclasses.field(default_factory=list)
    unaddressed: List[FailureMode] = dataclasses.field(default_factory=list)
    subject: str = ""

    def ranked_mitigations(self) -> List[Mitigation]:
        return [mitigation for mitigation, _score in self.recommendations]

    def top(self, count: int) -> List[Mitigation]:
        return self.ranked_mitigations()[:count]

    def score_for(self, name: str) -> Optional[float]:
        for mitigation, score in self.recommendations:
            if mitigation.name == name:
                return score
        return None

    def covers_component(self, component: Component) -> bool:
        return any(
            component in mitigation.addresses_components
            for mitigation, _score in self.recommendations
        )


# Generic mitigations derived from the guidance in Sections 2, 3, and 5.
# Concrete, system-specific mitigations (single sign-on, Anti-Phishing Phil,
# ...) are added on top of these by repro.mitigations.catalog.
GENERIC_MITIGATIONS: Tuple[Mitigation, ...] = (
    Mitigation(
        name="automate-or-default",
        strategy=MitigationStrategy.AUTOMATE,
        description=(
            "Replace the human decision with automated decision making or a "
            "well-chosen default setting."
        ),
        addresses_components=(
            Component.COMMUNICATION,
            Component.ATTITUDES_AND_BELIEFS,
            Component.MOTIVATION,
            Component.CAPABILITIES,
            Component.BEHAVIOR,
        ),
        effectiveness=0.85,
        cost=0.5,
        residual_risks=(
            "Automation that is wrong removes the human's chance to catch the error.",
            "May be too restrictive, inconvenient, or expensive for some deployments.",
        ),
    ),
    Mitigation(
        name="make-communication-active",
        strategy=MitigationStrategy.SUPPORT,
        description=(
            "Move the communication toward the active end of the spectrum so "
            "users cannot proceed without engaging with it."
        ),
        addresses_components=(
            Component.COMMUNICATION,
            Component.ATTENTION_SWITCH,
            Component.ENVIRONMENTAL_STIMULI,
        ),
        effectiveness=0.7,
        cost=0.2,
        residual_risks=(
            "Overuse breeds habituation and annoyance for low-severity hazards.",
        ),
    ),
    Mitigation(
        name="distinguish-from-routine-warnings",
        strategy=MitigationStrategy.SUPPORT,
        description=(
            "Make the communication look clearly different from routine, "
            "non-critical communications so it is not dismissed reflexively."
        ),
        addresses_components=(
            Component.COMMUNICATION,
            Component.COMPREHENSION,
            Component.ATTITUDES_AND_BELIEFS,
        ),
        effectiveness=0.5,
        cost=0.15,
    ),
    Mitigation(
        name="clarify-instructions",
        strategy=MitigationStrategy.SUPPORT,
        description=(
            "Rewrite the communication with short jargon-free sentences, familiar "
            "symbols, unambiguous risk statements, and explicit avoidance steps."
        ),
        addresses_components=(
            Component.COMPREHENSION,
            Component.KNOWLEDGE_ACQUISITION,
            Component.ATTENTION_MAINTENANCE,
            Component.BEHAVIOR,
        ),
        effectiveness=0.6,
        cost=0.15,
    ),
    Mitigation(
        name="explain-why-at-decision-time",
        strategy=MitigationStrategy.SUPPORT,
        description=(
            "Give users the information they need to decide at the moment of the "
            "decision: why the situation is suspicious and what the safe "
            "alternative is."
        ),
        addresses_components=(
            Component.ATTITUDES_AND_BELIEFS,
            Component.COMPREHENSION,
            Component.KNOWLEDGE_AND_EXPERIENCE,
        ),
        effectiveness=0.55,
        cost=0.2,
    ),
    Mitigation(
        name="decision-support-tools",
        strategy=MitigationStrategy.SUPPORT,
        description=(
            "Provide context-sensitive help, automated error checking, reminders, "
            "and visualizations that make anomalies and system state visible."
        ),
        addresses_components=(
            Component.CAPABILITIES,
            Component.KNOWLEDGE_ACQUISITION,
            Component.BEHAVIOR,
        ),
        effectiveness=0.55,
        cost=0.35,
    ),
    Mitigation(
        name="reduce-task-burden",
        strategy=MitigationStrategy.SUPPORT,
        description=(
            "Redesign the security task so it is easy, quick, and minimally "
            "disruptive to the user's workflow."
        ),
        addresses_components=(
            Component.MOTIVATION,
            Component.CAPABILITIES,
            Component.BEHAVIOR,
        ),
        effectiveness=0.6,
        cost=0.4,
    ),
    Mitigation(
        name="close-execution-gulf",
        strategy=MitigationStrategy.SUPPORT,
        description=(
            "Make the controls needed for the action readily apparent and include "
            "clear execution instructions in the communication."
        ),
        addresses_components=(Component.BEHAVIOR, Component.KNOWLEDGE_ACQUISITION),
        effectiveness=0.55,
        cost=0.25,
    ),
    Mitigation(
        name="provide-outcome-feedback",
        strategy=MitigationStrategy.SUPPORT,
        description=(
            "Provide feedback that lets users determine whether their action "
            "achieved the desired outcome (closes the gulf of evaluation)."
        ),
        addresses_components=(Component.BEHAVIOR,),
        effectiveness=0.5,
        cost=0.25,
    ),
    Mitigation(
        name="protect-communication-channel",
        strategy=MitigationStrategy.SUPPORT,
        description=(
            "Harden the indicator against spoofing, obscuring, and technology "
            "failures (trusted paths, unspoofable indicators, reliable delivery)."
        ),
        addresses_components=(Component.INTERFERENCE,),
        effectiveness=0.65,
        cost=0.45,
    ),
    Mitigation(
        name="reduce-indicator-clutter",
        strategy=MitigationStrategy.SUPPORT,
        description=(
            "Reduce the number of competing indicators and other stimuli presented "
            "alongside the communication."
        ),
        addresses_components=(Component.ENVIRONMENTAL_STIMULI, Component.ATTENTION_SWITCH),
        effectiveness=0.4,
        cost=0.2,
    ),
    Mitigation(
        name="training-and-mental-models",
        strategy=MitigationStrategy.TRAIN,
        description=(
            "Deliver engaging training (tutorials, games, embedded training) that "
            "builds accurate mental models of the hazard and how to avoid it."
        ),
        addresses_components=(
            Component.KNOWLEDGE_AND_EXPERIENCE,
            Component.COMPREHENSION,
            Component.KNOWLEDGE_ACQUISITION,
            Component.KNOWLEDGE_RETENTION,
            Component.KNOWLEDGE_TRANSFER,
        ),
        effectiveness=0.5,
        cost=0.4,
        residual_risks=(
            "Users may not be receptive to learning complicated security concepts.",
        ),
    ),
    Mitigation(
        name="explain-policy-rationale",
        strategy=MitigationStrategy.MOTIVATE,
        description=(
            "Explain the rationale behind policies and the consequences of "
            "security failures so users appreciate why compliance matters."
        ),
        addresses_components=(Component.MOTIVATION, Component.ATTITUDES_AND_BELIEFS),
        effectiveness=0.4,
        cost=0.15,
    ),
    Mitigation(
        name="incentives-and-sanctions",
        strategy=MitigationStrategy.MOTIVATE,
        description=(
            "Within an organization, reward compliance and sanction non-compliance "
            "with security policies."
        ),
        addresses_components=(Component.MOTIVATION,),
        effectiveness=0.45,
        cost=0.3,
        residual_risks=(
            "Sanctions can drive non-compliance underground rather than eliminate it.",
        ),
    ),
    Mitigation(
        name="reduce-false-positives",
        strategy=MitigationStrategy.SUPPORT,
        description=(
            "Reduce the false-positive rate of the detector behind the "
            "communication so that users' trust in it is preserved."
        ),
        addresses_components=(Component.ATTITUDES_AND_BELIEFS, Component.COMMUNICATION),
        effectiveness=0.55,
        cost=0.5,
    ),
    Mitigation(
        name="constrain-predictable-choices",
        strategy=MitigationStrategy.SUPPORT,
        description=(
            "Prevent users from making choices that fit known patterns (e.g. "
            "prohibit dictionary passwords, steer click points away from hot spots)."
        ),
        addresses_components=(Component.BEHAVIOR,),
        effectiveness=0.5,
        cost=0.25,
    ),
)


def suggest_mitigations(
    failures: FailureInventory,
    catalog: Optional[Sequence[Mitigation]] = None,
    minimum_score: float = 0.0,
) -> MitigationPlan:
    """Map an identified failure inventory to a ranked mitigation plan.

    Parameters
    ----------
    failures:
        The failure inventory produced by the analysis layer.
    catalog:
        Mitigations to consider; defaults to :data:`GENERIC_MITIGATIONS`.
        System-specific catalogs (see :mod:`repro.mitigations.catalog`) can
        be concatenated with the generic ones.
    minimum_score:
        Drop recommendations whose priority score falls below this value.

    Returns
    -------
    MitigationPlan
        Mitigations ranked by (risk addressed × effectiveness, discounted
        by cost), plus the failure modes no catalog entry addresses.
    """
    catalog = list(catalog) if catalog is not None else list(GENERIC_MITIGATIONS)
    risk_by_component = failures.risk_by_component()

    scored: List[Tuple[Mitigation, float]] = []
    for mitigation in catalog:
        addressed_risk = sum(
            risk_by_component.get(component, 0.0)
            for component in mitigation.addresses_components
        )
        if addressed_risk <= 0.0:
            continue
        score = mitigation.priority_score(addressed_risk)
        if score >= minimum_score:
            scored.append((mitigation, score))
    scored.sort(key=lambda item: item[1], reverse=True)

    addressed_components = {
        component
        for mitigation, _score in scored
        for component in mitigation.addresses_components
    }
    unaddressed = [
        failure for failure in failures if failure.component not in addressed_components
    ]

    return MitigationPlan(
        recommendations=scored,
        unaddressed=unaddressed,
        subject=failures.subject,
    )
