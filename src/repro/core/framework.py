"""The human-in-the-loop framework facade (Figure 1).

:class:`HumanInTheLoopFramework` ties the pieces of :mod:`repro.core`
together behind one object: the component inventory and influence graph of
Figure 1, the Table-1 checklist, the per-task and per-system analyses, the
mitigation suggestion engine, and the four-step process driver.  Most users
interact with the library through this class (see ``examples/quickstart.py``).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import networkx as nx

from .analysis import SystemAnalysis, TaskAnalysis, analyze_system, analyze_task
from .checklist import TABLE_1, Checklist, ChecklistEntry, build_checklist, entry_for
from .communication import CommunicationAdvice, HazardProfile, advise
from .components import (
    Component,
    ComponentGroup,
    GROUP_MEMBERS,
    influence_edges,
    ordered_components,
)
from .exceptions import AnalysisError
from .failure import FailureInventory
from .mitigation import GENERIC_MITIGATIONS, Mitigation, MitigationPlan, suggest_mitigations
from .process import HumanThreatProcess, ProcessResult
from .receiver import HumanReceiver
from .report import render_system_analysis, render_task_analysis
from .task import HumanSecurityTask, SecureSystem

__all__ = ["HumanInTheLoopFramework"]


class HumanInTheLoopFramework:
    """Facade over the human-in-the-loop security framework.

    Parameters
    ----------
    mitigation_catalog:
        Extra mitigations (beyond the generic catalog) to consider when
        suggesting mitigations and running the process.
    """

    def __init__(self, mitigation_catalog: Optional[Sequence[Mitigation]] = None) -> None:
        extra = list(mitigation_catalog) if mitigation_catalog else []
        self.mitigation_catalog: List[Mitigation] = list(GENERIC_MITIGATIONS) + extra

    # -- structure -------------------------------------------------------------

    @staticmethod
    def components() -> List[Component]:
        """Every framework component in Table-1 order."""
        return ordered_components()

    @staticmethod
    def component_groups() -> Dict[ComponentGroup, tuple]:
        """Mapping from component group to its member components."""
        return dict(GROUP_MEMBERS)

    @staticmethod
    def checklist_entry(component: Component) -> ChecklistEntry:
        """The Table-1 entry (questions and factors) for a component."""
        return entry_for(component)

    @staticmethod
    def checklist(subject: str = "") -> Checklist:
        """An empty, answerable instantiation of the Table-1 checklist."""
        return build_checklist(subject=subject)

    @staticmethod
    def table_1() -> tuple:
        """The full Table-1 encoding."""
        return TABLE_1

    @staticmethod
    def influence_graph() -> "nx.DiGraph":
        """The Figure-1 influence graph as a :class:`networkx.DiGraph`.

        Nodes are component-group names plus the impediment components;
        edges are the influence relationships depicted in Figure 1.
        """
        graph = nx.DiGraph(name="human-in-the-loop framework")
        for group in ComponentGroup:
            graph.add_node(group.value, kind="group",
                           receiver=group.is_receiver_group)
        graph.add_node(Component.ENVIRONMENTAL_STIMULI.value, kind="impediment", receiver=False)
        graph.add_node(Component.INTERFERENCE.value, kind="impediment", receiver=False)
        graph.add_edges_from(influence_edges())
        return graph

    # -- design guidance -------------------------------------------------------

    @staticmethod
    def advise_communication(hazard: HazardProfile) -> CommunicationAdvice:
        """Apply the §2.1 guidance on communication type and activeness."""
        return advise(hazard)

    # -- analysis --------------------------------------------------------------

    def analyze_task(
        self, task: HumanSecurityTask, receiver: Optional[HumanReceiver] = None
    ) -> TaskAnalysis:
        """Run the framework checklist analysis over a single task."""
        return analyze_task(task, receiver=receiver)

    def analyze_system(self, system: SecureSystem) -> SystemAnalysis:
        """Analyse every security-critical task of a system."""
        return analyze_system(system)

    def suggest_mitigations(self, failures: FailureInventory) -> MitigationPlan:
        """Suggest mitigations for a failure inventory using the full catalog."""
        return suggest_mitigations(failures, catalog=self.mitigation_catalog)

    # -- process ---------------------------------------------------------------

    def run_process(
        self,
        system: SecureSystem,
        max_passes: int = 3,
        acceptable_risk: float = 0.5,
    ) -> ProcessResult:
        """Run the Figure-2 human threat identification and mitigation process."""
        process = HumanThreatProcess(
            system,
            mitigation_catalog=self.mitigation_catalog,
            acceptable_risk=acceptable_risk,
        )
        return process.run(max_passes=max_passes)

    # -- reporting -------------------------------------------------------------

    def report_task(self, analysis: TaskAnalysis) -> str:
        """Render a task analysis as a Markdown report."""
        return render_task_analysis(analysis)

    def report_system(self, analysis: SystemAnalysis) -> str:
        """Render a system analysis as a Markdown report."""
        return render_system_analysis(analysis)
