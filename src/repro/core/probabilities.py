"""Shared stage-success probability model.

The framework itself is qualitative, but both the analysis layer (which
flags components whose expected success is low) and the simulation
substrate (which realizes stochastic outcomes for populations of simulated
receivers) need a common quantitative reading of the factors Table 1
enumerates.  This module provides that reading: for every pipeline stage it
computes a success probability from the attributes of the communication,
the impediment environment, the receiver, and the task design.

The functional forms are deliberately simple (bounded linear combinations
of the Table-1 factors) and every constant is documented.  They are not
fitted models of human behavior; they are the minimal quantitative
commitment needed to turn the paper's qualitative guidance — "the more
passive the communication, the more likely environmental stimuli will
prevent users from noticing it", "over time users may ignore security
indicators that they observe frequently" — into something executable.
Calibrations for the case-study experiments (which anchor specific
communications to the effect sizes reported in the cited user studies)
live in :mod:`repro.studies` and :mod:`repro.simulation.calibration`.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .behavior import TaskDesign
from .communication import Communication, CommunicationType
from .exceptions import ModelError
from .impediments import Environment
from .receiver import FloatOrArray, HumanReceiver
from .stages import STAGE_ORDER, Stage
from .task import HumanSecurityTask

__all__ = [
    "clamp_probability",
    "habituation_factor",
    "delivery_intact_probability",
    "attention_switch_probability",
    "attention_maintenance_probability",
    "comprehension_probability",
    "knowledge_acquisition_probability",
    "knowledge_retention_probability",
    "knowledge_transfer_probability",
    "intention_probability",
    "capability_probability",
    "behavior_success_probability",
    "applicable_stages",
    "stage_probabilities",
    "end_to_end_success_probability",
]

# Floor and ceiling applied to every stage probability.  Humans are never
# perfectly reliable nor perfectly unreliable; keeping probabilities off the
# boundaries also keeps downstream likelihood bands meaningful.
_FLOOR = 0.02
_CEILING = 0.98


def clamp_probability(value: FloatOrArray) -> FloatOrArray:
    """Clamp a raw score into the [_FLOOR, _CEILING] probability band.

    Accepts a float or a numpy array; every stage-probability function in
    this module is polymorphic the same way, so the batch simulation engine
    can evaluate the model over a whole population in one call.
    """
    return np.minimum(_CEILING, np.maximum(_FLOOR, value))


def habituation_factor(exposures: FloatOrArray, activeness: float) -> FloatOrArray:
    """Attention multiplier after repeated exposures (Section 2.3.1).

    Habituation decays attention exponentially with the number of prior
    exposures.  Active, task-blocking communications habituate more slowly
    than passive indicators because they force at least a dismissal action
    each time.  The factor is bounded below so that even heavily habituated
    users occasionally notice a communication.

    ``exposures`` is polymorphic like every stage function in this module:
    a float (fractional counts arise from recovery during exposure-free
    gaps, see :mod:`repro.simulation.habituation`) or a numpy array of
    per-receiver counts, as the multi-round engine carries between hazard
    encounters.  Both branches evaluate through ``np.exp`` so a scalar
    count and the same count inside an array yield bit-identical factors
    (the batch/reference equivalence regression relies on this).
    """
    if not 0.0 <= activeness <= 1.0:
        raise ModelError("activeness must be in [0, 1]")
    # Passive indicators lose ~8% of remaining attention per exposure,
    # blocking dialogs ~2.5%.
    decay_rate = 0.08 - 0.055 * activeness
    if np.ndim(exposures) == 0:
        if exposures < 0:
            raise ModelError("exposures must be non-negative")
        return max(0.25, float(np.exp(-decay_rate * float(exposures))))
    counts = np.asarray(exposures, dtype=float)
    if np.any(counts < 0):
        raise ModelError("exposures must be non-negative")
    return np.maximum(0.25, np.exp(-decay_rate * counts))


def delivery_intact_probability(environment: Environment) -> float:
    """Probability the communication survives interference intact."""
    return (1.0 - environment.block_probability) * (1.0 - 0.5 * environment.degrade_probability)


def attention_switch_probability(
    communication: Communication,
    environment: Environment,
    receiver: HumanReceiver,
    exposures: Optional[FloatOrArray] = None,
) -> float:
    """Probability the receiver notices the communication at all.

    Drivers (Table 1, attention-switch row): environmental stimuli,
    interference, format/conspicuity, length, delivery channel, and
    habituation.  Activeness dominates: a blocking dialog is nearly always
    noticed, a subtle chrome indicator frequently is not (user studies find
    some users have *never* noticed the SSL lock icon).

    ``exposures`` overrides the communication's baked-in
    ``habituation_exposures`` with a dynamic count — a fractional float or
    a per-receiver array, as the multi-round engine threads between hazard
    encounters.  ``None`` keeps the static baked-in count.
    """
    base = 0.15 + 0.8 * communication.activeness
    salience_bonus = 0.15 * communication.conspicuity
    distraction_penalty = (
        0.45 * environment.distraction_level * (1.0 - communication.activeness)
    )
    exposure_bonus = 0.1 * receiver.personal_variables.knowledge.prior_exposure * (
        1.0 - communication.activeness
    )
    raw = base + salience_bonus + exposure_bonus - distraction_penalty
    if exposures is None:
        exposures = communication.habituation_exposures
    raw = raw * habituation_factor(exposures, communication.activeness)
    raw = raw * delivery_intact_probability(environment)
    return clamp_probability(raw)


def attention_maintenance_probability(
    communication: Communication,
    environment: Environment,
    receiver: HumanReceiver,
) -> float:
    """Probability the receiver attends long enough to process the message."""
    # Long messages lose readers; 30 words is the comfortable baseline.
    length_penalty = min(0.4, 0.004 * max(0, communication.length_words - 30))
    base = 0.75 + 0.15 * communication.activeness - length_penalty
    base -= 0.25 * environment.distraction_level * (1.0 - communication.activeness)
    base += 0.1 * receiver.intentions.attitudes.perceived_relevance
    return clamp_probability(base)


def comprehension_probability(
    communication: Communication,
    receiver: HumanReceiver,
) -> float:
    """Probability the receiver understands what the communication means.

    Drivers: clarity (symbols, vocabulary, conceptual complexity) and the
    receiver's knowledge.  Resemblance to frequently-encountered,
    non-critical communications hurts: Egelman et al. found users who
    mistook the IE phishing warning for a 404 page.
    """
    expertise = receiver.personal_variables.expertise
    base = 0.25 + 0.5 * communication.clarity + 0.3 * expertise
    if communication.resembles_low_risk_communications:
        base -= 0.2
    domain = receiver.personal_variables.knowledge.domain_knowledge
    # Receivers with no mental model of the hazard misinterpret even clear
    # warnings (the "transient problem with the web site" misreading).
    base = base - 0.25 * np.maximum(0.0, 0.4 - domain)
    return clamp_probability(base)


def knowledge_acquisition_probability(
    communication: Communication,
    receiver: HumanReceiver,
) -> float:
    """Probability the receiver knows what to *do* in response."""
    base = 0.3 + 0.3 * receiver.personal_variables.expertise
    if communication.includes_instructions:
        base = base + 0.35
    if communication.explains_risk:
        base = base + 0.1
    # ``has_received_training`` may be a per-receiver boolean array.
    base = base + 0.15 * receiver.personal_variables.knowledge.has_received_training
    return clamp_probability(base)


def knowledge_retention_probability(
    communication: Communication,
    receiver: HumanReceiver,
) -> float:
    """Probability the receiver remembers the communication when needed.

    Only meaningful for training and policy communications — warnings that
    appear at hazard time do not need to be remembered.
    """
    knowledge = receiver.personal_variables.knowledge
    base = 0.35 + 0.3 * knowledge.prior_exposure + 0.2 * knowledge.expertise
    base = base + 0.1 * receiver.capabilities.memory_capacity
    base = base + 0.1 * knowledge.has_received_training
    return clamp_probability(base)


def knowledge_transfer_probability(
    communication: Communication,
    receiver: HumanReceiver,
) -> float:
    """Probability the receiver recognizes new situations where the
    communication applies and figures out how to apply it there."""
    knowledge = receiver.personal_variables.knowledge
    base = 0.3 + 0.35 * knowledge.expertise + 0.2 * knowledge.domain_knowledge
    base = base + 0.15 * knowledge.has_received_training
    return clamp_probability(base)


def intention_probability(
    communication: Communication,
    receiver: HumanReceiver,
) -> float:
    """Probability the receiver decides the communication is worth acting on.

    Combines the receiver's attitudes/beliefs and motivation with
    communication-side factors that modulate them: a history of false
    positives erodes trust, and the mere availability of an override lowers
    perceived risk ("since it gave me the option of still proceeding to the
    website, I figured it couldn't be that bad").
    """
    base = receiver.intentions.intention_score
    base -= 0.35 * communication.false_positive_rate
    if communication.allows_override and communication.comm_type is CommunicationType.WARNING:
        base -= 0.07
    if communication.explains_risk:
        base += 0.08
    if communication.resembles_low_risk_communications:
        base -= 0.1
    return clamp_probability(base)


def capability_probability(
    task: HumanSecurityTask,
    receiver: HumanReceiver,
) -> float:
    """Probability the receiver is capable of carrying out the action.

    ``receiver`` may be a :class:`~repro.core.receiver.HumanReceiver` or a
    batch receiver view whose capability dimensions are arrays; the shortfall
    arithmetic mirrors :meth:`HumanSecurityTask.capability_gap` elementwise.
    """
    requirements = task.capability_requirements
    capabilities = receiver.capabilities
    shortfall_total = 0.0
    has_gap = False
    for dimension in ("knowledge_to_act", "cognitive_skill", "physical_skill", "memory_capacity"):
        shortfall = getattr(requirements, dimension) - getattr(capabilities, dimension)
        gap = shortfall > 1e-9
        shortfall_total = shortfall_total + np.where(gap, shortfall, 0.0)
        has_gap = has_gap | gap
    # The software/device flags are population-wide constants, so they gate
    # every receiver in a batch at once (``| True`` keeps the array shape).
    if requirements.has_required_software and not capabilities.has_required_software:
        shortfall_total = shortfall_total + 1.0
        has_gap = has_gap | True
    if requirements.has_required_device and not capabilities.has_required_device:
        shortfall_total = shortfall_total + 1.0
        has_gap = has_gap | True
    probability = np.where(
        has_gap,
        clamp_probability(0.85 - 1.2 * shortfall_total),
        clamp_probability(0.6 + 0.4 * receiver.capability_score),
    )
    if np.ndim(probability) == 0:
        return float(probability)
    return probability


def behavior_success_probability(
    design: TaskDesign,
    receiver: HumanReceiver,
) -> float:
    """Probability the intended action is executed correctly (Section 2.4)."""
    base = 0.95
    base -= 0.5 * design.gulf_of_execution
    base -= 0.4 * design.lapse_exposure
    base -= 0.4 * design.slip_exposure
    base -= 0.1 * design.gulf_of_evaluation
    base += 0.1 * (receiver.capability_score - 0.5)
    return clamp_probability(base)


def applicable_stages(communication: Optional[Communication]) -> Dict[Stage, bool]:
    """Which pipeline stages apply for a given communication type.

    Warnings, notices and status indicators are presented at hazard time,
    so knowledge retention and transfer are "not applicable" (exactly the
    judgment the anti-phishing case study records for its Application
    row).  Training and policies are delivered ahead of time, so retention
    and transfer are central.
    """
    stages = {stage: True for stage in STAGE_ORDER}
    if communication is None:
        return {stage: False for stage in STAGE_ORDER}
    if not communication.comm_type.requires_knowledge_transfer:
        stages[Stage.KNOWLEDGE_RETENTION] = False
        stages[Stage.KNOWLEDGE_TRANSFER] = False
    return stages


def stage_probabilities(
    task: HumanSecurityTask,
    receiver: Optional[HumanReceiver] = None,
) -> Dict[Stage, float]:
    """Success probability for every *applicable* stage of a task.

    Stages that do not apply for the task's communication type are omitted
    from the result.  A task with no communication at all yields an empty
    mapping — the caller is expected to flag the missing communication as
    the root cause rather than reason about stages.
    """
    from .pipeline import build_pipeline

    return build_pipeline(task).stage_probabilities(receiver or task.primary_receiver)


def end_to_end_success_probability(
    task: HumanSecurityTask,
    receiver: Optional[HumanReceiver] = None,
) -> float:
    """Probability the whole pipeline — including intention and capability
    gates — succeeds for one receiver.

    The pipeline multiplies the applicable stage probabilities with the
    intention and capability gate probabilities.  A task with no
    communication is given a small residual success probability to reflect
    experts who initiate security actions on their own.
    """
    from .pipeline import build_pipeline

    return build_pipeline(task).success_probability(receiver or task.primary_receiver)
