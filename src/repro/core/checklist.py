"""Table 1: the framework checklist of questions and factors.

The paper summarizes the framework as a table (Table 1) that lists, for
every component, the *questions to ask* and the *factors to consider*.
This module encodes that table verbatim as structured data and provides a
small query API: look up the entry for a component, iterate entries in
Table-1 order, and build an answerable checklist for an analysis session.

The text of each question and factor follows the paper's wording (with
minor normalization of capitalization and the correction of the obvious
"thy"→"they" typo).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .components import Component, ComponentGroup
from .exceptions import UnknownComponentError

__all__ = [
    "ChecklistEntry",
    "ChecklistQuestion",
    "ChecklistAnswer",
    "Checklist",
    "TABLE_1",
    "entry_for",
    "iter_entries",
    "all_questions",
    "build_checklist",
]


@dataclasses.dataclass(frozen=True)
class ChecklistEntry:
    """One row of Table 1: a component with its questions and factors."""

    component: Component
    questions: Tuple[str, ...]
    factors: Tuple[str, ...]

    @property
    def group(self) -> ComponentGroup:
        return self.component.group

    def question_count(self) -> int:
        return len(self.questions)


TABLE_1: Tuple[ChecklistEntry, ...] = (
    ChecklistEntry(
        component=Component.COMMUNICATION,
        questions=(
            "What type of communication is it (warning, notice, status indicator, policy, training)?",
            "Is the communication active or passive?",
            "Is this the best type of communication for this situation?",
        ),
        factors=(
            "Severity of hazard",
            "Frequency with which hazard is encountered",
            "Extent to which appropriate user action is necessary to avoid hazard",
        ),
    ),
    ChecklistEntry(
        component=Component.ENVIRONMENTAL_STIMULI,
        questions=(
            "What other environmental stimuli are likely to be present?",
        ),
        factors=(
            "Other related and unrelated communications",
            "User's primary task",
            "Ambient light",
            "Noise",
        ),
    ),
    ChecklistEntry(
        component=Component.INTERFERENCE,
        questions=(
            "Will anything interfere with the communication being delivered as intended?",
        ),
        factors=(
            "Malicious attackers",
            "Technology failures",
            "Environmental stimuli that obscure the communication",
        ),
    ),
    ChecklistEntry(
        component=Component.DEMOGRAPHICS_AND_PERSONAL_CHARACTERISTICS,
        questions=(
            "Who are the users?",
            "What do their personal characteristics suggest about how they are likely to behave?",
        ),
        factors=(
            "Age",
            "Gender",
            "Culture",
            "Education",
            "Occupation",
            "Disabilities",
        ),
    ),
    ChecklistEntry(
        component=Component.KNOWLEDGE_AND_EXPERIENCE,
        questions=(
            "What relevant knowledge or experience do the users or recipients have?",
        ),
        factors=(
            "Education",
            "Occupation",
            "Prior experience",
        ),
    ),
    ChecklistEntry(
        component=Component.ATTITUDES_AND_BELIEFS,
        questions=(
            "Do users believe the communication is accurate?",
            "Do they believe they should pay attention to it?",
            "Do they have a positive attitude about it?",
        ),
        factors=(
            "Reliability",
            "Conflicting goals",
            "Distraction from primary task",
            "Risk perception",
            "Self-efficacy",
            "Response efficacy",
        ),
    ),
    ChecklistEntry(
        component=Component.MOTIVATION,
        questions=(
            "Are users motivated to take the appropriate action?",
            "Are they motivated to do it carefully or properly?",
        ),
        factors=(
            "Conflicting goals",
            "Distraction from primary task",
            "Convenience",
            "Risk perception",
            "Consequences",
            "Incentives/disincentives",
        ),
    ),
    ChecklistEntry(
        component=Component.CAPABILITIES,
        questions=(
            "Are users capable of taking the appropriate action?",
        ),
        factors=(
            "Knowledge",
            "Cognitive or physical skills",
            "Memorability",
            "Required software or devices",
        ),
    ),
    ChecklistEntry(
        component=Component.ATTENTION_SWITCH,
        questions=(
            "Do users notice the communication?",
            "Are they aware of rules, procedures, or training messages?",
        ),
        factors=(
            "Environmental stimuli",
            "Interference",
            "Format",
            "Font size",
            "Length",
            "Delivery channel",
            "Habituation",
        ),
    ),
    ChecklistEntry(
        component=Component.ATTENTION_MAINTENANCE,
        questions=(
            "Do users pay attention to the communication long enough to process it?",
            "Do they read, watch, or listen to it fully?",
        ),
        factors=(
            "Environmental stimuli",
            "Format",
            "Font size",
            "Length",
            "Delivery channel",
            "Habituation",
        ),
    ),
    ChecklistEntry(
        component=Component.COMPREHENSION,
        questions=(
            "Do users understand what the communication means?",
        ),
        factors=(
            "Symbols",
            "Vocabulary and sentence structure",
            "Conceptual complexity",
            "Personal variables",
        ),
    ),
    ChecklistEntry(
        component=Component.KNOWLEDGE_ACQUISITION,
        questions=(
            "Have users learned how to apply it in practice?",
            "Do they know what they are supposed to do?",
        ),
        factors=(
            "Exposure or training time",
            "Involvement during training",
            "Personal characteristics",
        ),
    ),
    ChecklistEntry(
        component=Component.KNOWLEDGE_RETENTION,
        questions=(
            "Do users remember the communication when a situation arises in which they need to apply it?",
            "Do they recognize and recall the meaning of symbols or instructions?",
        ),
        factors=(
            "Frequency",
            "Familiarity",
            "Long term memory",
            "Involvement during training",
            "Personal characteristics",
        ),
    ),
    ChecklistEntry(
        component=Component.KNOWLEDGE_TRANSFER,
        questions=(
            "Can users recognize situations where the communication is applicable and figure out how to apply it?",
        ),
        factors=(
            "Involvement during training",
            "Similarity of training",
            "Personal characteristics",
        ),
    ),
    ChecklistEntry(
        component=Component.BEHAVIOR,
        questions=(
            "Does behavior result in successful completion of desired action?",
            "Does behavior follow predictable patterns that an attacker might exploit?",
        ),
        factors=(
            "See Norman's Stages of Action, GEMS",
            "Type of behavior",
            "Ability of people to act randomly in this context",
            "Usefulness of prediction to attacker",
        ),
    ),
)

_ENTRIES_BY_COMPONENT: Dict[Component, ChecklistEntry] = {
    entry.component: entry for entry in TABLE_1
}


def entry_for(component: Component) -> ChecklistEntry:
    """Return the Table-1 entry for a component."""
    try:
        return _ENTRIES_BY_COMPONENT[component]
    except KeyError as error:
        raise UnknownComponentError(component) from error


def iter_entries(group: Optional[ComponentGroup] = None) -> Iterator[ChecklistEntry]:
    """Iterate Table-1 entries, optionally filtered to one component group."""
    for entry in TABLE_1:
        if group is None or entry.group is group:
            yield entry


def all_questions() -> List[Tuple[Component, str]]:
    """Return every (component, question) pair in Table-1 order."""
    questions: List[Tuple[Component, str]] = []
    for entry in TABLE_1:
        for question in entry.questions:
            questions.append((entry.component, question))
    return questions


@dataclasses.dataclass(frozen=True)
class ChecklistQuestion:
    """A single answerable question from the checklist."""

    component: Component
    text: str
    factors: Tuple[str, ...]


@dataclasses.dataclass
class ChecklistAnswer:
    """An analyst's answer to a checklist question."""

    question: ChecklistQuestion
    satisfactory: Optional[bool] = None
    notes: str = ""
    evidence: str = ""

    @property
    def answered(self) -> bool:
        return self.satisfactory is not None


@dataclasses.dataclass
class Checklist:
    """An answerable instantiation of Table 1 for one analysis session.

    A :class:`Checklist` is what a designer or operator fills in while
    walking a system through the framework; the analysis layer can also
    fill one in automatically from a task model.
    """

    answers: List[ChecklistAnswer] = dataclasses.field(default_factory=list)
    subject: str = ""

    def pending(self) -> List[ChecklistQuestion]:
        """Questions that have not been answered yet."""
        return [answer.question for answer in self.answers if not answer.answered]

    def answered(self) -> List[ChecklistAnswer]:
        return [answer for answer in self.answers if answer.answered]

    def unsatisfactory(self) -> List[ChecklistAnswer]:
        """Answers flagged unsatisfactory — candidate failure areas."""
        return [
            answer
            for answer in self.answers
            if answer.answered and answer.satisfactory is False
        ]

    def answer(
        self,
        component: Component,
        satisfactory: bool,
        notes: str = "",
        evidence: str = "",
    ) -> int:
        """Answer every pending question for ``component``.

        Returns the number of questions answered.  Designed for the common
        case where the analyst assesses a component as a whole rather than
        question-by-question.
        """
        count = 0
        for item in self.answers:
            if item.question.component is component and not item.answered:
                item.satisfactory = satisfactory
                item.notes = notes
                item.evidence = evidence
                count += 1
        if count == 0 and component not in _ENTRIES_BY_COMPONENT:
            raise UnknownComponentError(component)
        return count

    def completion(self) -> float:
        """Fraction of questions answered."""
        if not self.answers:
            return 1.0
        return len(self.answered()) / len(self.answers)

    def components_flagged(self) -> List[Component]:
        """Components with at least one unsatisfactory answer, in Table-1 order."""
        flagged = {answer.question.component for answer in self.unsatisfactory()}
        return [component for component in Component if component in flagged]


def build_checklist(subject: str = "", components: Optional[Sequence[Component]] = None) -> Checklist:
    """Build an empty answerable checklist covering Table 1.

    Parameters
    ----------
    subject:
        Free-text description of the system or task being analysed.
    components:
        Restrict the checklist to a subset of components (defaults to all).
    """
    selected = set(components) if components is not None else set(Component)
    answers: List[ChecklistAnswer] = []
    for entry in TABLE_1:
        if entry.component not in selected:
            continue
        for question in entry.questions:
            answers.append(
                ChecklistAnswer(
                    question=ChecklistQuestion(
                        component=entry.component,
                        text=question,
                        factors=entry.factors,
                    )
                )
            )
    return Checklist(answers=answers, subject=subject)
