"""Framework analysis: walking a task through the Table-1 checklist.

This is the *failure identification* machinery of the framework.  Given a
:class:`~repro.core.task.HumanSecurityTask` (and optionally a specific
receiver profile), :func:`analyze_task` walks every framework component,
rates it, records findings, and emits :class:`~repro.core.failure.FailureMode`
entries for the problems it detects.  :func:`analyze_system` applies the
same analysis to every security-critical task of a
:class:`~repro.core.task.SecureSystem` and merges the results.

The rules encode the guidance scattered through Sections 2 and 3 of the
paper — e.g. missing communications are themselves the likely root cause,
passive indicators in distracting environments fail at attention switch,
override options plus false positives erode intentions, and capability
gaps (password memorability) are first-class failures.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Sequence, Tuple

from . import probabilities
from .behavior import BehaviorFailureKind, assess_behavior_design
from .checklist import Checklist, build_checklist
from .communication import (
    Communication,
    CommunicationType,
    recommend_activeness,
    recommend_communication_type,
)
from .components import Component, ComponentGroup
from .exceptions import AnalysisError
from .failure import FailureInventory, FailureLikelihood, FailureMode, FailureSeverity
from .impediments import Environment
from .pipeline import build_pipeline
from .receiver import HumanReceiver
from .stages import Stage
from .task import HumanSecurityTask, SecureSystem

__all__ = [
    "ComponentRating",
    "ComponentAssessment",
    "TaskAnalysis",
    "SystemAnalysis",
    "analyze_task",
    "analyze_system",
]


class ComponentRating(enum.Enum):
    """Qualitative rating of a framework component for a given task."""

    STRONG = "strong"
    ADEQUATE = "adequate"
    WEAK = "weak"
    CRITICAL = "critical"

    @classmethod
    def from_score(cls, score: float) -> "ComponentRating":
        """Map a 0–1 health score (1 = healthy) to a rating."""
        if score >= 0.8:
            return cls.STRONG
        if score >= 0.6:
            return cls.ADEQUATE
        if score >= 0.35:
            return cls.WEAK
        return cls.CRITICAL

    @property
    def is_problematic(self) -> bool:
        return self in (ComponentRating.WEAK, ComponentRating.CRITICAL)


@dataclasses.dataclass
class ComponentAssessment:
    """Assessment of a single framework component for one task."""

    component: Component
    score: float
    rating: ComponentRating
    findings: List[str] = dataclasses.field(default_factory=list)
    failures: List[FailureMode] = dataclasses.field(default_factory=list)

    @property
    def satisfactory(self) -> bool:
        return not self.rating.is_problematic


@dataclasses.dataclass
class TaskAnalysis:
    """Complete framework analysis of one human security task."""

    task: HumanSecurityTask
    receiver: HumanReceiver
    assessments: Dict[Component, ComponentAssessment]
    failures: FailureInventory
    checklist: Checklist
    stage_probabilities: Dict[Stage, float]
    success_probability: float

    def assessment(self, component: Component) -> ComponentAssessment:
        return self.assessments[component]

    def problematic_components(self) -> List[Component]:
        """Components rated weak or critical, in Table-1 order."""
        return [
            component
            for component in Component
            if component in self.assessments
            and self.assessments[component].rating.is_problematic
        ]

    def weakest_component(self) -> Component:
        """The component with the lowest health score."""
        return min(self.assessments.values(), key=lambda item: item.score).component

    def findings(self) -> List[str]:
        """All findings across components, in Table-1 order."""
        collected: List[str] = []
        for component in Component:
            if component in self.assessments:
                collected.extend(self.assessments[component].findings)
        return collected


@dataclasses.dataclass
class SystemAnalysis:
    """Framework analysis of every security-critical task in a system."""

    system: SecureSystem
    task_analyses: Dict[str, TaskAnalysis]
    failures: FailureInventory

    def analysis_for(self, task_name: str) -> TaskAnalysis:
        if task_name not in self.task_analyses:
            raise AnalysisError(f"no analysis for task {task_name!r}")
        return self.task_analyses[task_name]

    def weakest_task(self) -> Optional[str]:
        """The task with the lowest end-to-end success probability."""
        if not self.task_analyses:
            return None
        return min(
            self.task_analyses,
            key=lambda name: self.task_analyses[name].success_probability,
        )

    def mean_success_probability(self) -> float:
        if not self.task_analyses:
            return 1.0
        values = [analysis.success_probability for analysis in self.task_analyses.values()]
        return sum(values) / len(values)


# ---------------------------------------------------------------------------
# Per-component assessment rules
# ---------------------------------------------------------------------------


def _failure_id(task: HumanSecurityTask, component: Component, suffix: str = "") -> str:
    tail = f".{suffix}" if suffix else ""
    return f"{task.name}.{component.value}{tail}"


def _assess_communication(task: HumanSecurityTask) -> ComponentAssessment:
    communication = task.communication
    findings: List[str] = []
    failures: List[FailureMode] = []

    if communication is None:
        findings.append(
            "No communication is associated with this security-critical task; "
            "the lack of communication is likely at least partially responsible "
            "for any observed failure."
        )
        failures.append(
            FailureMode(
                identifier=_failure_id(task, Component.COMMUNICATION, "missing"),
                component=Component.COMMUNICATION,
                description=(
                    "The task relies on the human acting without any triggering "
                    "communication (warning, notice, training, or policy)."
                ),
                severity=FailureSeverity.MAJOR,
                likelihood=FailureLikelihood.LIKELY,
                evidence="Section 2: absence of a triggering communication",
                task_name=task.name,
            )
        )
        return ComponentAssessment(
            component=Component.COMMUNICATION,
            score=0.1,
            rating=ComponentRating.CRITICAL,
            findings=findings,
            failures=failures,
        )

    score = 1.0
    recommended_type = recommend_communication_type(communication.hazard)
    if recommended_type is not communication.comm_type and communication.comm_type in (
        CommunicationType.WARNING,
        CommunicationType.NOTICE,
        CommunicationType.STATUS_INDICATOR,
    ):
        score -= 0.2
        findings.append(
            f"A {recommended_type.value} may fit this hazard better than the "
            f"current {communication.comm_type.value}."
        )

    recommended_activeness = recommend_activeness(communication.hazard)
    activeness_gap = recommended_activeness.score - communication.activeness
    if activeness_gap > 0.3:
        score -= 0.3
        findings.append(
            "The communication is substantially more passive than the hazard "
            "severity warrants; users are unlikely to notice it in time."
        )
        failures.append(
            FailureMode(
                identifier=_failure_id(task, Component.COMMUNICATION, "too-passive"),
                component=Component.COMMUNICATION,
                description=(
                    "Communication is too passive for the severity of the hazard "
                    "and the necessity of user action."
                ),
                severity=FailureSeverity.MAJOR,
                likelihood=FailureLikelihood.LIKELY,
                evidence="Section 2.1 active-passive guidance",
                task_name=task.name,
            )
        )
    elif activeness_gap < -0.4:
        score -= 0.15
        findings.append(
            "The communication is more interruptive than the hazard warrants; "
            "frequent active interruptions about low-risk hazards breed habituation."
        )

    if communication.false_positive_rate >= 0.2:
        score -= 0.2
        findings.append(
            "The communication has a noticeable false-positive history, which "
            "will erode users' trust in it."
        )
    if communication.resembles_low_risk_communications:
        score -= 0.15
        findings.append(
            "The communication resembles frequently-encountered, non-critical "
            "communications and may be confused with them."
        )
        failures.append(
            FailureMode(
                identifier=_failure_id(task, Component.COMMUNICATION, "lookalike"),
                component=Component.COMMUNICATION,
                description=(
                    "Communication looks similar to routine, non-critical "
                    "communications (e.g. generic browser error pages)."
                ),
                severity=FailureSeverity.MODERATE,
                likelihood=FailureLikelihood.POSSIBLE,
                evidence="Anti-phishing case study: IE warning mistaken for 404",
                task_name=task.name,
            )
        )
    if (
        communication.comm_type is CommunicationType.WARNING
        and not communication.includes_instructions
    ):
        score -= 0.15
        findings.append(
            "The warning does not include specific hazard-avoidance instructions; "
            "good warnings tell users exactly what to do."
        )

    score = max(0.0, min(1.0, score))
    return ComponentAssessment(
        component=Component.COMMUNICATION,
        score=score,
        rating=ComponentRating.from_score(score),
        findings=findings,
        failures=failures,
    )


def _assess_environmental_stimuli(task: HumanSecurityTask) -> ComponentAssessment:
    environment = task.environment
    communication = task.communication
    findings: List[str] = []
    failures: List[FailureMode] = []

    distraction = environment.distraction_level
    passivity = 1.0 - (communication.activeness if communication else 0.0)
    exposure = distraction * (0.4 + 0.6 * passivity)
    score = 1.0 - exposure

    if distraction >= 0.5:
        findings.append(
            "The environment is distracting (primary task, competing "
            "communications); passive communications are likely to be missed."
        )
    if environment.competing_indicator_count >= 3:
        findings.append(
            "Multiple security indicators compete for attention in the same "
            "chrome; users will have difficulty focusing on any particular one."
        )
    if exposure >= 0.45:
        failures.append(
            FailureMode(
                identifier=_failure_id(task, Component.ENVIRONMENTAL_STIMULI, "distraction"),
                component=Component.ENVIRONMENTAL_STIMULI,
                description=(
                    "Environmental stimuli (primary task, other communications) "
                    "are likely to divert attention from the communication."
                ),
                severity=FailureSeverity.MODERATE,
                likelihood=FailureLikelihood.from_probability(exposure),
                evidence="Section 2.2 environmental stimuli",
                task_name=task.name,
            )
        )

    score = max(0.0, min(1.0, score))
    return ComponentAssessment(
        component=Component.ENVIRONMENTAL_STIMULI,
        score=score,
        rating=ComponentRating.from_score(score),
        findings=findings,
        failures=failures,
    )


def _assess_interference(task: HumanSecurityTask) -> ComponentAssessment:
    environment = task.environment
    findings: List[str] = []
    failures: List[FailureMode] = []

    block = environment.block_probability
    degrade = environment.degrade_probability
    spoof = environment.spoof_probability
    disruption = 1.0 - (1.0 - block) * (1.0 - degrade) * (1.0 - spoof)
    score = 1.0 - disruption

    if block > 0.05:
        findings.append("The communication can be blocked before it reaches the user.")
    if degrade > 0.05:
        findings.append(
            "The communication can arrive degraded (delayed, partially obscured, "
            "or inadvertently dismissed)."
        )
    if spoof > 0.05:
        findings.append(
            "An attacker can spoof or manipulate the indicator so users rely on "
            "an attacker-controlled communication."
        )
    if disruption >= 0.1:
        failures.append(
            FailureMode(
                identifier=_failure_id(task, Component.INTERFERENCE, "disruption"),
                component=Component.INTERFERENCE,
                description=(
                    "Interference (attacker action, technology failure, or "
                    "obscuring stimuli) can prevent the communication from being "
                    "received as intended."
                ),
                severity=FailureSeverity.MAJOR if spoof > 0.05 else FailureSeverity.MODERATE,
                likelihood=FailureLikelihood.from_probability(disruption),
                evidence="Section 2.2 interference",
                task_name=task.name,
            )
        )

    score = max(0.0, min(1.0, score))
    return ComponentAssessment(
        component=Component.INTERFERENCE,
        score=score,
        rating=ComponentRating.from_score(score),
        findings=findings,
        failures=failures,
    )


def _assess_demographics(task: HumanSecurityTask, receiver: HumanReceiver) -> ComponentAssessment:
    findings: List[str] = []
    failures: List[FailureMode] = []
    demographics = receiver.personal_variables.demographics

    score = 0.8
    if demographics.has_disabilities:
        score -= 0.2
        findings.append(
            "Some expected users have disabilities; verify the communication "
            "remains perceivable and the action remains performable for them."
        )
    spread = len({profile.personal_variables.is_expert for profile in task.receivers})
    if spread > 1:
        findings.append(
            "The expected population spans novices through experts; a single "
            "communication design is unlikely to serve both well."
        )
        score -= 0.1

    score = max(0.0, min(1.0, score))
    return ComponentAssessment(
        component=Component.DEMOGRAPHICS_AND_PERSONAL_CHARACTERISTICS,
        score=score,
        rating=ComponentRating.from_score(score),
        findings=findings,
        failures=failures,
    )


def _assess_knowledge_experience(
    task: HumanSecurityTask, receiver: HumanReceiver
) -> ComponentAssessment:
    findings: List[str] = []
    failures: List[FailureMode] = []
    knowledge = receiver.personal_variables.knowledge

    score = 0.4 + 0.6 * knowledge.expertise
    if knowledge.domain_knowledge < 0.3:
        findings.append(
            "Many expected users lack a mental model of this hazard and may "
            "misinterpret the communication."
        )
        failures.append(
            FailureMode(
                identifier=_failure_id(task, Component.KNOWLEDGE_AND_EXPERIENCE, "mental-model"),
                component=Component.KNOWLEDGE_AND_EXPERIENCE,
                description=(
                    "Users without prior knowledge of the hazard form inaccurate "
                    "mental models and misinterpret the communication."
                ),
                severity=FailureSeverity.MODERATE,
                likelihood=FailureLikelihood.LIKELY,
                evidence="Anti-phishing case study: users assumed the emailed link was legitimate",
                task_name=task.name,
            )
        )
    if receiver.is_expert:
        findings.append(
            "Expert users may second-guess the communication and erroneously "
            "conclude the situation is less risky than it actually is."
        )

    score = max(0.0, min(1.0, score))
    return ComponentAssessment(
        component=Component.KNOWLEDGE_AND_EXPERIENCE,
        score=score,
        rating=ComponentRating.from_score(score),
        findings=findings,
        failures=failures,
    )


def _assess_attitudes(task: HumanSecurityTask, receiver: HumanReceiver) -> ComponentAssessment:
    findings: List[str] = []
    failures: List[FailureMode] = []
    communication = task.communication

    belief = receiver.intentions.attitudes.belief_score
    score = belief
    if communication is not None:
        if communication.false_positive_rate >= 0.2:
            score -= 0.15
            findings.append(
                "Past false positives make users less inclined to take the "
                "communication seriously."
            )
        if communication.allows_override and communication.comm_type is CommunicationType.WARNING:
            findings.append(
                "The override option itself signals to users that the hazard "
                "cannot be that serious."
            )
    if score < 0.5:
        failures.append(
            FailureMode(
                identifier=_failure_id(task, Component.ATTITUDES_AND_BELIEFS, "disbelief"),
                component=Component.ATTITUDES_AND_BELIEFS,
                description=(
                    "Users do not believe the communication is accurate or worth "
                    "acting on (low trust, low perceived risk, or low efficacy)."
                ),
                severity=FailureSeverity.MODERATE,
                likelihood=FailureLikelihood.from_probability(1.0 - score),
                evidence="Section 2.3.5 attitudes and beliefs",
                task_name=task.name,
            )
        )

    score = max(0.0, min(1.0, score))
    return ComponentAssessment(
        component=Component.ATTITUDES_AND_BELIEFS,
        score=score,
        rating=ComponentRating.from_score(score),
        findings=findings,
        failures=failures,
    )


def _assess_motivation(task: HumanSecurityTask, receiver: HumanReceiver) -> ComponentAssessment:
    findings: List[str] = []
    failures: List[FailureMode] = []
    motivation = receiver.intentions.motivation

    score = motivation.motivation_score
    if motivation.conflicting_goals >= 0.5:
        findings.append(
            "The security task conflicts with users' other goals (e.g. sharing "
            "passwords to collaborate, completing the primary task quickly)."
        )
    if motivation.primary_task_pressure >= 0.6:
        findings.append(
            "Users under primary-task pressure will view delays as more "
            "important to avoid than security risks."
        )
    if score < 0.5:
        failures.append(
            FailureMode(
                identifier=_failure_id(task, Component.MOTIVATION, "unmotivated"),
                component=Component.MOTIVATION,
                description=(
                    "Users are not motivated to take the appropriate action or to "
                    "do it carefully (conflicting goals, inconvenience, weak "
                    "perceived consequences)."
                ),
                severity=FailureSeverity.MODERATE,
                likelihood=FailureLikelihood.from_probability(1.0 - score),
                evidence="Section 2.3.5 motivation",
                task_name=task.name,
            )
        )

    score = max(0.0, min(1.0, score))
    return ComponentAssessment(
        component=Component.MOTIVATION,
        score=score,
        rating=ComponentRating.from_score(score),
        findings=findings,
        failures=failures,
    )


def _assess_capabilities(task: HumanSecurityTask, receiver: HumanReceiver) -> ComponentAssessment:
    findings: List[str] = []
    failures: List[FailureMode] = []

    gaps = task.capability_gap(receiver)
    probability = probabilities.capability_probability(task, receiver)
    score = probability

    if gaps:
        dimension_list = ", ".join(sorted(gaps))
        findings.append(
            f"The task demands capabilities the expected users lack ({dimension_list})."
        )
        severity = (
            FailureSeverity.MAJOR
            if "memory_capacity" in gaps or sum(gaps.values()) >= 0.3
            else FailureSeverity.MODERATE
        )
        failures.append(
            FailureMode(
                identifier=_failure_id(task, Component.CAPABILITIES, "gap"),
                component=Component.CAPABILITIES,
                description=(
                    "Users are not capable of performing the required action "
                    f"(shortfall in: {dimension_list})."
                ),
                severity=severity,
                likelihood=FailureLikelihood.from_probability(1.0 - probability),
                evidence="Section 2.3.6 capabilities",
                task_name=task.name,
            )
        )
    if "memory_capacity" in gaps:
        findings.append(
            "The task relies on memorizing random-looking or numerous secrets, a "
            "memory task most users cannot perform."
        )

    score = max(0.0, min(1.0, score))
    return ComponentAssessment(
        component=Component.CAPABILITIES,
        score=score,
        rating=ComponentRating.from_score(score),
        findings=findings,
        failures=failures,
    )


_STAGE_FAILURE_DESCRIPTIONS: Dict[Stage, str] = {
    Stage.ATTENTION_SWITCH: "Users do not notice the communication.",
    Stage.ATTENTION_MAINTENANCE: (
        "Users do not attend to the communication long enough to process it."
    ),
    Stage.COMPREHENSION: "Users do not understand what the communication means.",
    Stage.KNOWLEDGE_ACQUISITION: (
        "Users do not know what they are supposed to do in response to the communication."
    ),
    Stage.KNOWLEDGE_RETENTION: (
        "Users do not remember the communication when the situation requiring it arises."
    ),
    Stage.KNOWLEDGE_TRANSFER: (
        "Users fail to recognize new situations where the communication applies."
    ),
    Stage.BEHAVIOR: (
        "Users fail to complete the desired action correctly even after deciding to act."
    ),
}

_STAGE_SEVERITIES: Dict[Stage, FailureSeverity] = {
    Stage.ATTENTION_SWITCH: FailureSeverity.MAJOR,
    Stage.ATTENTION_MAINTENANCE: FailureSeverity.MODERATE,
    Stage.COMPREHENSION: FailureSeverity.MAJOR,
    Stage.KNOWLEDGE_ACQUISITION: FailureSeverity.MODERATE,
    Stage.KNOWLEDGE_RETENTION: FailureSeverity.MODERATE,
    Stage.KNOWLEDGE_TRANSFER: FailureSeverity.MODERATE,
    Stage.BEHAVIOR: FailureSeverity.MAJOR,
}


def _assess_stage(
    task: HumanSecurityTask,
    stage: Stage,
    probability: Optional[float],
) -> ComponentAssessment:
    findings: List[str] = []
    failures: List[FailureMode] = []

    if probability is None:
        # Stage not applicable for this communication type.
        return ComponentAssessment(
            component=stage.component,
            score=1.0,
            rating=ComponentRating.STRONG,
            findings=["Not applicable for this communication type."],
            failures=[],
        )

    score = probability
    if probability < 0.6:
        findings.append(
            f"Estimated {stage.value.replace('_', ' ')} success is only "
            f"{probability:.0%} for the expected receiver population."
        )
        failures.append(
            FailureMode(
                identifier=_failure_id(task, stage.component, "low-probability"),
                component=stage.component,
                description=_STAGE_FAILURE_DESCRIPTIONS[stage],
                severity=_STAGE_SEVERITIES[stage],
                likelihood=FailureLikelihood.from_probability(1.0 - probability),
                stage=stage,
                evidence="Stage probability model over the task attributes",
                task_name=task.name,
            )
        )

    return ComponentAssessment(
        component=stage.component,
        score=max(0.0, min(1.0, score)),
        rating=ComponentRating.from_score(score),
        findings=findings,
        failures=failures,
    )


def _assess_behavior(
    task: HumanSecurityTask,
    receiver: HumanReceiver,
    probability: Optional[float],
) -> ComponentAssessment:
    base = _assess_stage(task, Stage.BEHAVIOR, probability)
    design_assessment = assess_behavior_design(
        task.task_design,
        receiver_capability=receiver.capability_score,
        receiver_knowledge=receiver.capabilities.knowledge_to_act,
    )
    base.findings.extend(design_assessment.notes)

    predictability = design_assessment.risk_for(BehaviorFailureKind.PREDICTABLE_BEHAVIOR)
    if predictability >= 0.3:
        base.failures.append(
            FailureMode(
                identifier=_failure_id(task, Component.BEHAVIOR, "predictable"),
                component=Component.BEHAVIOR,
                description=(
                    "Users complete the action successfully but in predictable "
                    "patterns an attacker can exploit."
                ),
                severity=FailureSeverity.MODERATE,
                likelihood=FailureLikelihood.from_probability(predictability),
                stage=Stage.BEHAVIOR,
                behavior_kind=BehaviorFailureKind.PREDICTABLE_BEHAVIOR,
                evidence="Section 2.4 predictable behavior (graphical-password hot spots)",
                task_name=task.name,
            )
        )
        base.score = max(0.0, base.score - 0.2)
        base.rating = ComponentRating.from_score(base.score)
    return base


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def analyze_task(
    task: HumanSecurityTask,
    receiver: Optional[HumanReceiver] = None,
) -> TaskAnalysis:
    """Run the full framework analysis for one task.

    Parameters
    ----------
    task:
        The human security task to analyse.
    receiver:
        The receiver profile to analyse against; defaults to the task's
        primary receiver.
    """
    receiver = receiver or task.primary_receiver
    # The analytic walk and the simulation engine traverse the same shared
    # pipeline; the analysis simply reads its uncalibrated probabilities.
    plan = build_pipeline(task)
    stage_probs = plan.stage_probabilities(receiver)

    assessments: Dict[Component, ComponentAssessment] = {}
    assessments[Component.COMMUNICATION] = _assess_communication(task)
    assessments[Component.ENVIRONMENTAL_STIMULI] = _assess_environmental_stimuli(task)
    assessments[Component.INTERFERENCE] = _assess_interference(task)
    assessments[Component.DEMOGRAPHICS_AND_PERSONAL_CHARACTERISTICS] = _assess_demographics(
        task, receiver
    )
    assessments[Component.KNOWLEDGE_AND_EXPERIENCE] = _assess_knowledge_experience(task, receiver)
    assessments[Component.ATTITUDES_AND_BELIEFS] = _assess_attitudes(task, receiver)
    assessments[Component.MOTIVATION] = _assess_motivation(task, receiver)
    assessments[Component.CAPABILITIES] = _assess_capabilities(task, receiver)

    for stage in (
        Stage.ATTENTION_SWITCH,
        Stage.ATTENTION_MAINTENANCE,
        Stage.COMPREHENSION,
        Stage.KNOWLEDGE_ACQUISITION,
        Stage.KNOWLEDGE_RETENTION,
        Stage.KNOWLEDGE_TRANSFER,
    ):
        assessments[stage.component] = _assess_stage(task, stage, stage_probs.get(stage))
    assessments[Component.BEHAVIOR] = _assess_behavior(
        task, receiver, stage_probs.get(Stage.BEHAVIOR)
    )

    failures = FailureInventory(subject=task.name)
    for assessment in assessments.values():
        for failure in assessment.failures:
            failures.add(failure)

    checklist = build_checklist(subject=task.name)
    for component, assessment in assessments.items():
        notes = "; ".join(assessment.findings)
        checklist.answer(component, satisfactory=assessment.satisfactory, notes=notes)

    success = plan.success_probability(receiver)

    return TaskAnalysis(
        task=task,
        receiver=receiver,
        assessments=assessments,
        failures=failures,
        checklist=checklist,
        stage_probabilities=stage_probs,
        success_probability=success,
    )


def analyze_system(system: SecureSystem) -> SystemAnalysis:
    """Run the framework analysis over every security-critical task."""
    system.validate()
    task_analyses: Dict[str, TaskAnalysis] = {}
    merged = FailureInventory(subject=system.name)
    for task in system.security_critical_tasks():
        analysis = analyze_task(task)
        task_analyses[task.name] = analysis
        for failure in analysis.failures:
            merged.add(
                dataclasses.replace(failure, system_name=system.name)
            )
    return SystemAnalysis(system=system, task_analyses=task_analyses, failures=merged)
