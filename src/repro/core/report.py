"""Report generation for framework analyses and process runs.

The framework is meant to be used by designers and operators; the output of
an analysis therefore needs to be readable.  This module renders
:class:`~repro.core.analysis.TaskAnalysis`,
:class:`~repro.core.analysis.SystemAnalysis`, and
:class:`~repro.core.process.ProcessResult` objects as plain-text /
Markdown reports mirroring the structure of the case studies in Section 3
of the paper (one bullet per framework component, followed by the failure
identification summary and the mitigation recommendations).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from .analysis import SystemAnalysis, TaskAnalysis
from .components import Component, ComponentGroup
from .failure import FailureMode
from .mitigation import MitigationPlan
from .process import ProcessResult

__all__ = [
    "render_task_analysis",
    "render_system_analysis",
    "render_mitigation_plan",
    "render_process_result",
    "render_failure_table",
]


def _heading(text: str, level: int = 2) -> str:
    return f"{'#' * level} {text}"


def _format_failure(failure: FailureMode) -> str:
    stage = f", stage: {failure.stage.value}" if failure.stage else ""
    return (
        f"- **{failure.identifier}** ({failure.component.title}{stage}) — "
        f"{failure.description} "
        f"[severity: {failure.severity.name.lower()}, "
        f"likelihood: {failure.likelihood.name.lower()}, "
        f"risk: {failure.risk_score:.2f}]"
    )


def render_failure_table(failures: Iterable[FailureMode]) -> str:
    """Render failure modes as a Markdown table ranked by risk."""
    rows = sorted(failures, key=lambda failure: failure.risk_score, reverse=True)
    lines = [
        "| Failure | Component | Severity | Likelihood | Risk |",
        "|---|---|---|---|---|",
    ]
    for failure in rows:
        lines.append(
            f"| {failure.identifier} | {failure.component.title} | "
            f"{failure.severity.name.lower()} | {failure.likelihood.name.lower()} | "
            f"{failure.risk_score:.2f} |"
        )
    return "\n".join(lines)


def render_task_analysis(analysis: TaskAnalysis, heading_level: int = 2) -> str:
    """Render a per-component analysis in the style of the paper's case studies."""
    lines: List[str] = []
    task = analysis.task
    lines.append(_heading(f"Framework analysis: {task.name}", heading_level))
    if task.description:
        lines.append(task.description)
    lines.append("")
    lines.append(
        f"End-to-end success probability for the analysed receiver "
        f"({analysis.receiver.name}): **{analysis.success_probability:.1%}**"
    )
    lines.append("")

    for component in Component:
        if component not in analysis.assessments:
            continue
        assessment = analysis.assessments[component]
        lines.append(f"- **{component.title}** — rating: {assessment.rating.value} "
                     f"(score {assessment.score:.2f})")
        for finding in assessment.findings:
            lines.append(f"  - {finding}")
    lines.append("")

    if len(analysis.failures) > 0:
        lines.append(_heading("Identified failure modes", heading_level + 1))
        for failure in analysis.failures.ranked():
            lines.append(_format_failure(failure))
    else:
        lines.append("No failure modes identified.")
    lines.append("")

    if analysis.stage_probabilities:
        lines.append(_heading("Stage success probabilities", heading_level + 1))
        for stage, probability in analysis.stage_probabilities.items():
            lines.append(f"- {stage.value.replace('_', ' ')}: {probability:.1%}")
    return "\n".join(lines)


def render_mitigation_plan(plan: MitigationPlan, heading_level: int = 2) -> str:
    """Render a ranked mitigation plan."""
    lines: List[str] = []
    subject = f" for {plan.subject}" if plan.subject else ""
    lines.append(_heading(f"Mitigation plan{subject}", heading_level))
    if not plan.recommendations:
        lines.append("No mitigations recommended (no addressable risk identified).")
        return "\n".join(lines)
    for rank, (mitigation, score) in enumerate(plan.recommendations, start=1):
        lines.append(
            f"{rank}. **{mitigation.name}** ({mitigation.strategy.value}, "
            f"priority {score:.2f}) — {mitigation.description}"
        )
        for risk in mitigation.residual_risks:
            lines.append(f"   - residual risk: {risk}")
    if plan.unaddressed:
        lines.append("")
        lines.append("Unaddressed failure modes:")
        for failure in plan.unaddressed:
            lines.append(_format_failure(failure))
    return "\n".join(lines)


def render_system_analysis(analysis: SystemAnalysis, heading_level: int = 1) -> str:
    """Render the analysis of every task in a system."""
    lines: List[str] = []
    lines.append(_heading(f"System analysis: {analysis.system.name}", heading_level))
    if analysis.system.description:
        lines.append(analysis.system.description)
    lines.append("")
    lines.append(
        f"Mean end-to-end success probability across tasks: "
        f"{analysis.mean_success_probability():.1%}"
    )
    weakest = analysis.weakest_task()
    if weakest is not None:
        lines.append(f"Weakest task: **{weakest}**")
    lines.append("")
    for task_name in sorted(analysis.task_analyses):
        lines.append(render_task_analysis(analysis.task_analyses[task_name], heading_level + 1))
        lines.append("")
    return "\n".join(lines)


def render_process_result(result: ProcessResult, heading_level: int = 1) -> str:
    """Render the trace of a human threat identification and mitigation run."""
    lines: List[str] = []
    lines.append(_heading(
        f"Human threat identification and mitigation: {result.system_name}", heading_level
    ))
    lines.append(f"Passes completed: {result.pass_count}")
    lines.append(
        "Residual risk trajectory: "
        + " → ".join(f"{risk:.2f}" for risk in result.risk_trajectory())
    )
    lines.append("")
    for process_pass in result.passes:
        lines.append(_heading(f"Pass {process_pass.pass_number}", heading_level + 1))
        lines.append(
            f"Identified security-critical tasks: {', '.join(process_pass.identified_tasks) or 'none'}"
        )
        if process_pass.tasks_without_communication:
            lines.append(
                "Tasks with no associated communication (likely root cause of failures): "
                + ", ".join(process_pass.tasks_without_communication)
            )
        lines.append("")
        lines.append("Task automation decisions:")
        for task_name, outcome in sorted(process_pass.automation_outcomes.items()):
            lines.append(
                f"- {task_name}: **{outcome.decision.value}** "
                f"(human reliability ≈ {outcome.human_reliability_estimate:.0%}) — "
                f"{outcome.rationale}"
            )
        lines.append("")
        lines.append(
            f"Failure modes identified: {len(process_pass.analysis.failures)} "
            f"(total risk {process_pass.analysis.failures.total_risk():.2f})"
        )
        for task_name, plan in sorted(process_pass.mitigation_plans.items()):
            if plan.recommendations:
                top = plan.recommendations[0][0]
                lines.append(f"- {task_name}: top mitigation **{top.name}** ({top.strategy.value})")
        lines.append(f"Residual risk after this pass: {process_pass.residual_risk:.2f}")
        lines.append("")
    return "\n".join(lines)
