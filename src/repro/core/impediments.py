"""Communication impediments: environmental stimuli and interference.

Section 2.2 of the paper identifies two classes of impediments that may
cause a partial or full communication failure:

* **Environmental stimuli** — other communications and activities that
  divert the receiver's attention (related/unrelated communications, the
  primary task, ambient light and noise).
* **Interference** — anything that prevents the communication from being
  received as the sender intended (malicious attackers, technology
  failures, or environmental stimuli that physically obscure it).

The :class:`Environment` aggregate combines both and exposes the derived
quantities the analysis and simulation layers need: a *distraction level*
and the probabilities that the communication is blocked, degraded, or
spoofed before it ever reaches the receiver.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterable, List, Optional, Tuple

from .exceptions import ModelError

__all__ = [
    "StimulusKind",
    "EnvironmentalStimulus",
    "InterferenceSource",
    "Interference",
    "Environment",
]


class StimulusKind(enum.Enum):
    """Kinds of environmental stimuli competing for attention."""

    RELATED_COMMUNICATION = "related_communication"
    UNRELATED_COMMUNICATION = "unrelated_communication"
    PRIMARY_TASK = "primary_task"
    AMBIENT_NOISE = "ambient_noise"
    AMBIENT_LIGHT = "ambient_light"
    OTHER = "other"


@dataclasses.dataclass(frozen=True)
class EnvironmentalStimulus:
    """A single stimulus competing with the security communication.

    ``intensity`` expresses how strongly the stimulus competes for the
    receiver's attention on a 0–1 scale.  The anti-phishing case study, for
    example, lists "the user's email client and/or other applications
    related to the user's primary task" as stimuli.
    """

    kind: StimulusKind
    intensity: float = 0.5
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.intensity <= 1.0:
            raise ModelError(f"stimulus intensity must be in [0, 1], got {self.intensity}")


class InterferenceSource(enum.Enum):
    """Sources of interference (Table 1, interference row)."""

    MALICIOUS_ATTACKER = "malicious_attacker"
    TECHNOLOGY_FAILURE = "technology_failure"
    ENVIRONMENTAL_OBSCURING = "environmental_obscuring"


@dataclasses.dataclass(frozen=True)
class Interference:
    """A single interference channel acting on the communication.

    Parameters
    ----------
    source:
        Who or what causes the interference.
    block_probability:
        Probability the communication never reaches the receiver at all
        (e.g. a popup suppressed by a technology failure, an audio alert
        drowned out by noise).
    degrade_probability:
        Probability the communication arrives but degraded (delayed,
        partially obscured).  The IE passive anti-phishing warning that
        "usually loads a few seconds after the page loads" and can be
        dismissed inadvertently is modeled as degradation.
    spoof_probability:
        Probability an attacker substitutes or manipulates the indicator so
        the receiver sees an attacker-controlled communication instead
        (e.g. the SSL lock-icon spoofing attacks of Ye et al.).
    """

    source: InterferenceSource
    block_probability: float = 0.0
    degrade_probability: float = 0.0
    spoof_probability: float = 0.0
    description: str = ""

    def __post_init__(self) -> None:
        for field_name in ("block_probability", "degrade_probability", "spoof_probability"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ModelError(f"{field_name} must be in [0, 1], got {value}")

    @property
    def total_disruption(self) -> float:
        """Probability the communication is disrupted in some way."""
        intact = (
            (1.0 - self.block_probability)
            * (1.0 - self.degrade_probability)
            * (1.0 - self.spoof_probability)
        )
        return 1.0 - intact


@dataclasses.dataclass
class Environment:
    """The full impediment context surrounding a communication.

    Combines the set of environmental stimuli with any interference
    channels, and derives the aggregate quantities consumed by the
    analysis and simulation layers.
    """

    stimuli: List[EnvironmentalStimulus] = dataclasses.field(default_factory=list)
    interference: List[Interference] = dataclasses.field(default_factory=list)
    competing_indicator_count: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if self.competing_indicator_count < 0:
            raise ModelError("competing_indicator_count must be non-negative")

    # -- construction helpers -------------------------------------------------

    def add_stimulus(
        self,
        kind: StimulusKind,
        intensity: float = 0.5,
        description: str = "",
    ) -> "Environment":
        """Append a stimulus and return ``self`` for chaining."""
        self.stimuli.append(
            EnvironmentalStimulus(kind=kind, intensity=intensity, description=description)
        )
        return self

    def add_interference(self, interference: Interference) -> "Environment":
        """Append an interference channel and return ``self`` for chaining."""
        self.interference.append(interference)
        return self

    # -- derived quantities ----------------------------------------------------

    @property
    def distraction_level(self) -> float:
        """Aggregate distraction from all stimuli, on a 0–1 scale.

        Stimuli combine sub-additively: each additional stimulus eats into
        the remaining attention budget, mirroring the observation that
        passive indicators "compete with each other for the user's
        attention".  Competing security indicators in the chrome add a
        small extra penalty each.
        """
        remaining = 1.0
        for stimulus in self.stimuli:
            remaining *= 1.0 - 0.8 * stimulus.intensity
        clutter_penalty = min(0.3, 0.05 * self.competing_indicator_count)
        distraction = 1.0 - remaining + clutter_penalty
        return min(1.0, max(0.0, distraction))

    @property
    def block_probability(self) -> float:
        """Probability the communication is blocked before delivery."""
        intact = 1.0
        for channel in self.interference:
            intact *= 1.0 - channel.block_probability
        return 1.0 - intact

    @property
    def degrade_probability(self) -> float:
        """Probability the communication arrives degraded (given not blocked)."""
        intact = 1.0
        for channel in self.interference:
            intact *= 1.0 - channel.degrade_probability
        return 1.0 - intact

    @property
    def spoof_probability(self) -> float:
        """Probability the receiver sees an attacker-controlled indicator."""
        intact = 1.0
        for channel in self.interference:
            intact *= 1.0 - channel.spoof_probability
        return 1.0 - intact

    @property
    def has_active_attacker(self) -> bool:
        """Whether any interference channel is attributed to an attacker."""
        return any(
            channel.source is InterferenceSource.MALICIOUS_ATTACKER
            for channel in self.interference
        )

    def primary_task_intensity(self) -> float:
        """Intensity of the primary-task stimulus, if one is present."""
        intensities = [
            stimulus.intensity
            for stimulus in self.stimuli
            if stimulus.kind is StimulusKind.PRIMARY_TASK
        ]
        return max(intensities) if intensities else 0.0

    @classmethod
    def quiet(cls) -> "Environment":
        """An environment with no impediments (useful in tests/baselines)."""
        return cls(stimuli=[], interference=[], competing_indicator_count=0)

    @classmethod
    def typical_desktop(cls) -> "Environment":
        """A typical desktop-browsing environment.

        The receiver is engaged in a primary task of moderate intensity and
        is surrounded by a handful of unrelated notifications.
        """
        environment = cls()
        environment.add_stimulus(StimulusKind.PRIMARY_TASK, 0.6, "primary browsing/email task")
        environment.add_stimulus(
            StimulusKind.UNRELATED_COMMUNICATION, 0.2, "background notifications"
        )
        return environment
