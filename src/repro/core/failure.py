"""Failure modes identified by the framework analysis.

The purpose of the framework is "a systematic approach to identifying
potential causes for human failure".  This module defines the vocabulary
the analysis layer produces: a :class:`FailureMode` ties a framework
component (and optionally a pipeline stage or behavior failure kind) to a
description, a severity, a likelihood, and the evidence behind it.  A
:class:`FailureInventory` collects the failure modes found for a task or a
whole system and supports the ranking and filtering operations the
mitigation step needs.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .behavior import BehaviorFailureKind
from .components import Component, ComponentGroup
from .exceptions import ModelError
from .stages import Stage

__all__ = [
    "FailureSeverity",
    "FailureLikelihood",
    "FailureMode",
    "FailureInventory",
]


class FailureSeverity(enum.Enum):
    """How bad the security consequence of a failure mode is."""

    NEGLIGIBLE = 0
    MINOR = 1
    MODERATE = 2
    MAJOR = 3
    CRITICAL = 4

    @property
    def weight(self) -> float:
        return self.value / 4.0


class FailureLikelihood(enum.Enum):
    """How likely a failure mode is to occur in the expected population."""

    RARE = 0
    UNLIKELY = 1
    POSSIBLE = 2
    LIKELY = 3
    ALMOST_CERTAIN = 4

    @property
    def weight(self) -> float:
        return self.value / 4.0

    @classmethod
    def from_probability(cls, probability: float) -> "FailureLikelihood":
        """Map a probability to the nearest likelihood band."""
        if not 0.0 <= probability <= 1.0:
            raise ModelError(f"probability must be in [0, 1], got {probability}")
        if probability < 0.05:
            return cls.RARE
        if probability < 0.2:
            return cls.UNLIKELY
        if probability < 0.45:
            return cls.POSSIBLE
        if probability < 0.75:
            return cls.LIKELY
        return cls.ALMOST_CERTAIN


@dataclasses.dataclass(frozen=True)
class FailureMode:
    """A potential cause of human security failure.

    Attributes
    ----------
    identifier:
        Short stable identifier (useful when mapping mitigations to
        failures), e.g. ``"antiphishing.ie-passive.attention_switch"``.
    component:
        The framework component where the failure originates.
    description:
        What goes wrong.
    severity / likelihood:
        Qualitative ratings combined into :attr:`risk_score`.
    stage:
        The information-processing stage involved, when applicable.
    behavior_kind:
        For behavior-stage failures, the GEMS/Norman/predictability kind.
    evidence:
        Provenance: user-study findings, simulation output, or analyst
        judgment supporting this failure mode.
    task_name / system_name:
        Where the failure mode was identified.
    """

    identifier: str
    component: Component
    description: str
    severity: FailureSeverity = FailureSeverity.MODERATE
    likelihood: FailureLikelihood = FailureLikelihood.POSSIBLE
    stage: Optional[Stage] = None
    behavior_kind: Optional[BehaviorFailureKind] = None
    evidence: str = ""
    task_name: str = ""
    system_name: str = ""

    def __post_init__(self) -> None:
        if not self.identifier:
            raise ModelError("failure mode identifier must be non-empty")
        if not self.description:
            raise ModelError("failure mode description must be non-empty")
        if self.stage is not None and self.stage.component is not self.component:
            # Stages map one-to-one onto components; a mismatch indicates a
            # construction bug in the caller.
            raise ModelError(
                f"stage {self.stage} does not belong to component {self.component}"
            )

    @property
    def group(self) -> ComponentGroup:
        return self.component.group

    @property
    def risk_score(self) -> float:
        """Severity-weighted likelihood in [0, 1]."""
        return self.severity.weight * self.likelihood.weight

    def is_critical(self) -> bool:
        """Whether this failure mode needs attention before shipping."""
        return self.risk_score >= 0.5 or (
            self.severity is FailureSeverity.CRITICAL
            and self.likelihood.weight >= FailureLikelihood.POSSIBLE.weight
        )


@dataclasses.dataclass
class FailureInventory:
    """A collection of failure modes with ranking and filtering helpers."""

    failures: List[FailureMode] = dataclasses.field(default_factory=list)
    subject: str = ""

    def __iter__(self) -> Iterator[FailureMode]:
        return iter(self.failures)

    def __len__(self) -> int:
        return len(self.failures)

    def add(self, failure: FailureMode) -> "FailureInventory":
        """Add a failure mode, rejecting duplicate identifiers."""
        if any(existing.identifier == failure.identifier for existing in self.failures):
            raise ModelError(f"duplicate failure identifier {failure.identifier!r}")
        self.failures.append(failure)
        return self

    def extend(self, failures: Iterable[FailureMode]) -> "FailureInventory":
        for failure in failures:
            self.add(failure)
        return self

    def by_component(self, component: Component) -> List[FailureMode]:
        return [failure for failure in self.failures if failure.component is component]

    def by_group(self, group: ComponentGroup) -> List[FailureMode]:
        return [failure for failure in self.failures if failure.group is group]

    def by_task(self, task_name: str) -> List[FailureMode]:
        return [failure for failure in self.failures if failure.task_name == task_name]

    def critical(self) -> List[FailureMode]:
        return [failure for failure in self.failures if failure.is_critical()]

    def ranked(self) -> List[FailureMode]:
        """Failure modes ordered from highest to lowest risk score."""
        return sorted(self.failures, key=lambda failure: failure.risk_score, reverse=True)

    def top(self, count: int) -> List[FailureMode]:
        if count < 0:
            raise ModelError("count must be non-negative")
        return self.ranked()[:count]

    def dominant_component(self) -> Optional[Component]:
        """The component carrying the most aggregate risk, if any."""
        totals = self.risk_by_component()
        if not totals:
            return None
        return max(totals, key=lambda component: totals[component])

    def risk_by_component(self) -> Dict[Component, float]:
        """Aggregate risk score per component."""
        totals: Dict[Component, float] = {}
        for failure in self.failures:
            totals[failure.component] = totals.get(failure.component, 0.0) + failure.risk_score
        return totals

    def risk_by_group(self) -> Dict[ComponentGroup, float]:
        """Aggregate risk score per component group."""
        totals: Dict[ComponentGroup, float] = {}
        for failure in self.failures:
            totals[failure.group] = totals.get(failure.group, 0.0) + failure.risk_score
        return totals

    def total_risk(self) -> float:
        return sum(failure.risk_score for failure in self.failures)

    def merge(self, other: "FailureInventory") -> "FailureInventory":
        """Return a new inventory combining this one with ``other``."""
        merged = FailureInventory(subject=self.subject or other.subject)
        merged.extend(self.failures)
        for failure in other.failures:
            if all(existing.identifier != failure.identifier for existing in merged.failures):
                merged.add(failure)
        return merged
