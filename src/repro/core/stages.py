"""Information-processing stages of the human receiver.

The framework groups the receiver's information processing into three
steps, each with two stages (Sections 2.3.1–2.3.3):

* **Communication delivery** — attention switch, attention maintenance.
* **Communication processing** — comprehension, knowledge acquisition.
* **Application** — knowledge retention, knowledge transfer.

The behavior stage (Section 2.4) closes the pipeline.  This module defines
the stage enumeration, the mapping between stages and framework
components, and the :class:`StageOutcome` / :class:`StageTrace` records the
simulation and analysis layers use to report where in the pipeline a
receiver failed.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .components import Component, ComponentGroup
from .exceptions import ModelError

__all__ = [
    "Stage",
    "STAGE_ORDER",
    "STAGE_COMPONENTS",
    "stage_component",
    "stages_for_group",
    "StageOutcome",
    "StageTrace",
    "GATE_CHECKPOINTS",
    "StageTraceBatch",
    "FunnelCounts",
]

#: Funnel checkpoints evaluated after the pre-behavior pipeline stages, in
#: traversal order: the intention gate, the capability gate, and the
#: behavior stage.  Together with the applicable pre-behavior stages these
#: label the columns of a :class:`StageTraceBatch`.
GATE_CHECKPOINTS: Tuple[str, ...] = ("intention", "capability", "behavior")


class Stage(enum.Enum):
    """The seven pipeline stages a security communication passes through."""

    ATTENTION_SWITCH = "attention_switch"
    ATTENTION_MAINTENANCE = "attention_maintenance"
    COMPREHENSION = "comprehension"
    KNOWLEDGE_ACQUISITION = "knowledge_acquisition"
    KNOWLEDGE_RETENTION = "knowledge_retention"
    KNOWLEDGE_TRANSFER = "knowledge_transfer"
    BEHAVIOR = "behavior"

    @property
    def component(self) -> Component:
        """The Table-1 component this stage corresponds to."""
        return STAGE_COMPONENTS[self]

    @property
    def group(self) -> ComponentGroup:
        """The processing-step group (delivery/processing/application/behavior)."""
        return self.component.group

    @property
    def index(self) -> int:
        """Position of the stage in the nominal pipeline order."""
        return STAGE_ORDER.index(self)


STAGE_ORDER: Tuple[Stage, ...] = (
    Stage.ATTENTION_SWITCH,
    Stage.ATTENTION_MAINTENANCE,
    Stage.COMPREHENSION,
    Stage.KNOWLEDGE_ACQUISITION,
    Stage.KNOWLEDGE_RETENTION,
    Stage.KNOWLEDGE_TRANSFER,
    Stage.BEHAVIOR,
)

STAGE_COMPONENTS: Dict[Stage, Component] = {
    Stage.ATTENTION_SWITCH: Component.ATTENTION_SWITCH,
    Stage.ATTENTION_MAINTENANCE: Component.ATTENTION_MAINTENANCE,
    Stage.COMPREHENSION: Component.COMPREHENSION,
    Stage.KNOWLEDGE_ACQUISITION: Component.KNOWLEDGE_ACQUISITION,
    Stage.KNOWLEDGE_RETENTION: Component.KNOWLEDGE_RETENTION,
    Stage.KNOWLEDGE_TRANSFER: Component.KNOWLEDGE_TRANSFER,
    Stage.BEHAVIOR: Component.BEHAVIOR,
}


def stage_component(stage: Stage) -> Component:
    """Return the framework component that owns ``stage``."""
    return STAGE_COMPONENTS[stage]


def stages_for_group(group: ComponentGroup) -> Tuple[Stage, ...]:
    """Return the stages belonging to a processing-step group."""
    return tuple(stage for stage in STAGE_ORDER if stage.group is group)


@dataclasses.dataclass(frozen=True)
class StageOutcome:
    """Outcome of a single stage for a single receiver.

    ``probability`` records the modeled success probability at this stage
    (useful for analysis and debugging), while ``succeeded`` records the
    realized outcome for a simulated receiver.
    """

    stage: Stage
    succeeded: bool
    probability: float = 1.0
    note: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ModelError(f"probability must be in [0, 1], got {self.probability}")


@dataclasses.dataclass
class StageTrace:
    """Ordered record of stage outcomes for one receiver-communication pass.

    The trace stops at the first failed stage (downstream stages are not
    evaluated), mirroring the way a receiver who never notices a warning
    can never comprehend it.  ``skipped`` records stages the pipeline
    deliberately did not evaluate (e.g. knowledge transfer for an
    automatically displayed warning).
    """

    outcomes: List[StageOutcome] = dataclasses.field(default_factory=list)
    skipped: List[Stage] = dataclasses.field(default_factory=list)

    def record(self, outcome: StageOutcome) -> None:
        """Append a stage outcome, enforcing pipeline order."""
        if self.outcomes and outcome.stage.index <= self.outcomes[-1].stage.index:
            raise ModelError(
                "stage outcomes must be recorded in pipeline order: "
                f"{outcome.stage} after {self.outcomes[-1].stage}"
            )
        self.outcomes.append(outcome)

    def skip(self, stage: Stage) -> None:
        """Mark a stage as deliberately skipped (not applicable)."""
        self.skipped.append(stage)

    @property
    def succeeded(self) -> bool:
        """Whether every evaluated stage succeeded."""
        return all(outcome.succeeded for outcome in self.outcomes)

    @property
    def failed_stage(self) -> Optional[Stage]:
        """The first stage that failed, or ``None`` if all succeeded."""
        for outcome in self.outcomes:
            if not outcome.succeeded:
                return outcome.stage
        return None

    @property
    def evaluated_stages(self) -> List[Stage]:
        return [outcome.stage for outcome in self.outcomes]

    def outcome_for(self, stage: Stage) -> Optional[StageOutcome]:
        """Return the outcome recorded for ``stage`` if it was evaluated."""
        for outcome in self.outcomes:
            if outcome.stage is stage:
                return outcome
        return None

    def success_probability(self) -> float:
        """Product of modeled stage probabilities over evaluated stages."""
        probability = 1.0
        for outcome in self.outcomes:
            probability *= outcome.probability
        return probability


@dataclasses.dataclass(frozen=True)
class StageTraceBatch:
    """Per-receiver outcome arrays for every pipeline checkpoint.

    The array counterpart of :class:`StageTrace`: one column per funnel
    checkpoint — each applicable pre-behavior stage in pipeline order,
    then the :data:`GATE_CHECKPOINTS` (intention, capability, behavior) —
    and one row per receiver of the batch.  ``entered[i, k]`` records
    whether receiver ``i`` actually reached checkpoint ``k`` (spoofed
    receivers reach nothing; a receiver who fails at a stage never enters
    the ones behind it), ``passed[i, k]`` whether they cleared it.  A task
    with no communication traverses the single ``"self_initiated"``
    checkpoint.

    The traversal kernel emits one of these per batch; the funnel tally in
    :mod:`repro.simulation.metrics` folds the column sums and discards the
    arrays, so funnel analytics stay O(batch) in memory.
    """

    labels: Tuple[str, ...]
    stages: Tuple[Stage, ...]
    skipped: Tuple[Stage, ...]
    entered: np.ndarray
    passed: np.ndarray
    spoofed: np.ndarray

    def __post_init__(self) -> None:
        if self.entered.shape != self.passed.shape:
            raise ModelError("entered and passed must have identical shapes")
        if self.entered.ndim != 2 or self.entered.shape[1] != len(self.labels):
            raise ModelError(
                f"trace arrays must be (count, {len(self.labels)}); "
                f"got {self.entered.shape}"
            )

    @property
    def count(self) -> int:
        """Receivers in the batch."""
        return int(self.entered.shape[0])

    def column(self, label: str) -> int:
        """Column index of one checkpoint label."""
        if label not in self.labels:
            raise ModelError(f"unknown checkpoint {label!r}; known: {list(self.labels)}")
        return self.labels.index(label)

    def entered_counts(self) -> np.ndarray:
        """Receivers that reached each checkpoint (one int per column)."""
        return self.entered.sum(axis=0)

    def passed_counts(self) -> np.ndarray:
        """Receivers that cleared each checkpoint (one int per column)."""
        return self.passed.sum(axis=0)

    def counts(self) -> "FunnelCounts":
        """This trace's column sums as a :class:`FunnelCounts`."""
        return FunnelCounts(
            labels=self.labels,
            entered=tuple(int(value) for value in self.entered_counts()),
            passed=tuple(int(value) for value in self.passed_counts()),
            n=self.count,
            spoofed=int(np.count_nonzero(self.spoofed)),
        )


@dataclasses.dataclass(frozen=True)
class FunnelCounts:
    """Per-checkpoint entered/passed totals of one batch traversal.

    The counts-only funnel trace: exactly the column sums a
    :class:`StageTraceBatch` reduces to, but computed inside the traversal
    kernel from masks it already has live — no (receivers, checkpoints)
    boolean matrices are ever allocated.  The streaming funnel tally
    accepts either form and folds identical integers from both, which is
    what lets the engine collect funnel analytics at close to the
    trace-off throughput.
    """

    labels: Tuple[str, ...]
    entered: Tuple[int, ...]
    passed: Tuple[int, ...]
    n: int
    spoofed: int

    def __post_init__(self) -> None:
        if len(self.entered) != len(self.labels) or len(self.passed) != len(self.labels):
            raise ModelError(
                f"entered/passed must have one total per label "
                f"({len(self.labels)}); got {len(self.entered)}/{len(self.passed)}"
            )
