"""The human threat identification and mitigation process (Figure 2).

Section 3 describes a four-step iterative process built around the
framework:

1. **Task identification** — enumerate the points where the system relies
   on humans to perform security-critical functions.
2. **Task automation** — attempt to partially or fully automate some of
   those tasks (replace decisions with defaults or automated decision
   making).
3. **Failure identification** — apply the framework to identify potential
   failure modes for the remaining human tasks.
4. **Failure mitigation** — find ways to prevent those failures by better
   supporting the humans.

The process can be run at design time or on a deployed system, and can be
iterated: "if after completing the mitigation step designers are unable to
reduce human failure rates to an acceptable level, they might return to the
automation step and explore whether it is feasible to develop an automated
approach that would perform more reliably than humans."

:class:`HumanThreatProcess` drives the four steps over a
:class:`~repro.core.task.SecureSystem` and records a full, inspectable
trace of every pass.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Sequence, Tuple

from .analysis import SystemAnalysis, TaskAnalysis, analyze_system
from .exceptions import ProcessError
from .failure import FailureInventory
from .mitigation import (
    GENERIC_MITIGATIONS,
    Mitigation,
    MitigationPlan,
    suggest_mitigations,
)
from .task import HumanSecurityTask, SecureSystem

__all__ = [
    "ProcessStep",
    "AutomationDecision",
    "TaskAutomationOutcome",
    "ProcessPass",
    "ProcessResult",
    "HumanThreatProcess",
]


class ProcessStep(enum.Enum):
    """The four steps of the Figure-2 process."""

    TASK_IDENTIFICATION = "task_identification"
    TASK_AUTOMATION = "task_automation"
    FAILURE_IDENTIFICATION = "failure_identification"
    FAILURE_MITIGATION = "failure_mitigation"


class AutomationDecision(enum.Enum):
    """Outcome of the task-automation step for one task."""

    AUTOMATE = "automate"
    PARTIALLY_AUTOMATE = "partially_automate"
    KEEP_HUMAN = "keep_human"


@dataclasses.dataclass(frozen=True)
class TaskAutomationOutcome:
    """Automation decision for a single task, with rationale."""

    task_name: str
    decision: AutomationDecision
    rationale: str
    human_reliability_estimate: float

    @property
    def human_remains_in_loop(self) -> bool:
        return self.decision is not AutomationDecision.AUTOMATE


@dataclasses.dataclass
class ProcessPass:
    """Record of one full pass through the four steps."""

    pass_number: int
    identified_tasks: List[str]
    tasks_without_communication: List[str]
    automation_outcomes: Dict[str, TaskAutomationOutcome]
    analysis: SystemAnalysis
    mitigation_plans: Dict[str, MitigationPlan]
    residual_risk: float

    @property
    def remaining_human_tasks(self) -> List[str]:
        """Tasks that still rely on a human after the automation step."""
        return [
            name
            for name, outcome in self.automation_outcomes.items()
            if outcome.human_remains_in_loop
        ]

    def mitigation_plan_for(self, task_name: str) -> MitigationPlan:
        if task_name not in self.mitigation_plans:
            raise ProcessError(f"no mitigation plan for task {task_name!r}")
        return self.mitigation_plans[task_name]


@dataclasses.dataclass
class ProcessResult:
    """Complete result of running the process (possibly multiple passes)."""

    system_name: str
    passes: List[ProcessPass]

    @property
    def final_pass(self) -> ProcessPass:
        if not self.passes:
            raise ProcessError("process produced no passes")
        return self.passes[-1]

    @property
    def pass_count(self) -> int:
        return len(self.passes)

    def risk_trajectory(self) -> List[float]:
        """Residual risk after each pass (should be non-increasing)."""
        return [process_pass.residual_risk for process_pass in self.passes]

    def converged(self, tolerance: float = 1e-6) -> bool:
        """Whether the last pass no longer reduced the residual risk."""
        if len(self.passes) < 2:
            return False
        return (
            self.passes[-2].residual_risk - self.passes[-1].residual_risk
        ) <= tolerance


class HumanThreatProcess:
    """Driver for the human threat identification and mitigation process.

    Parameters
    ----------
    system:
        The secure system under analysis.
    mitigation_catalog:
        Mitigations to consider in the failure-mitigation step; defaults to
        the generic catalog plus nothing system-specific.
    acceptable_risk:
        Residual-risk threshold below which iteration stops.
    mitigation_discount:
        Fraction by which an applied top mitigation is assumed to reduce
        the risk it addresses when estimating residual risk for the next
        pass.  This is a planning estimate, not a claim about real-world
        effectiveness.
    """

    def __init__(
        self,
        system: SecureSystem,
        mitigation_catalog: Optional[Sequence[Mitigation]] = None,
        acceptable_risk: float = 0.5,
        mitigation_discount: float = 0.5,
    ) -> None:
        if not 0.0 <= mitigation_discount <= 1.0:
            raise ProcessError("mitigation_discount must be in [0, 1]")
        if acceptable_risk < 0.0:
            raise ProcessError("acceptable_risk must be non-negative")
        self.system = system
        self.mitigation_catalog = (
            list(mitigation_catalog) if mitigation_catalog is not None else list(GENERIC_MITIGATIONS)
        )
        self.acceptable_risk = acceptable_risk
        self.mitigation_discount = mitigation_discount

    # -- individual steps -----------------------------------------------------

    def identify_tasks(self) -> List[HumanSecurityTask]:
        """Step 1: enumerate the security-critical human tasks."""
        return self.system.security_critical_tasks()

    def evaluate_automation(self, analysis: SystemAnalysis) -> Dict[str, TaskAutomationOutcome]:
        """Step 2: decide, per task, whether automation beats the human."""
        outcomes: Dict[str, TaskAutomationOutcome] = {}
        for task in self.identify_tasks():
            task_analysis = analysis.task_analyses.get(task.name)
            human_reliability = (
                task_analysis.success_probability if task_analysis is not None else 0.5
            )
            profile = task.automation
            if profile.automation_advisable(human_reliability):
                decision = AutomationDecision.AUTOMATE
                rationale = (
                    "A feasible automated alternative is more reliable than the "
                    f"human (human reliability ≈ {human_reliability:.0%}, automation "
                    f"accuracy ≈ {profile.automation_accuracy:.0%})."
                )
            elif profile.can_fully_automate:
                decision = AutomationDecision.PARTIALLY_AUTOMATE
                rationale = (
                    "Automation is feasible but either the human holds an "
                    "information advantage or constraints require keeping an "
                    "override; keep the human in the loop with automated support."
                )
                if profile.vendor_constraints:
                    rationale += f" Constraint: {profile.vendor_constraints}"
            else:
                decision = AutomationDecision.KEEP_HUMAN
                rationale = (
                    "No feasible or cost-effective automated alternative exists; "
                    "the human must remain in the loop."
                )
            outcomes[task.name] = TaskAutomationOutcome(
                task_name=task.name,
                decision=decision,
                rationale=rationale,
                human_reliability_estimate=human_reliability,
            )
        return outcomes

    def identify_failures(self) -> SystemAnalysis:
        """Step 3: apply the framework to identify failure modes."""
        return analyze_system(self.system)

    def plan_mitigations(
        self,
        analysis: SystemAnalysis,
        automation_outcomes: Dict[str, TaskAutomationOutcome],
    ) -> Dict[str, MitigationPlan]:
        """Step 4: produce a mitigation plan per remaining human task."""
        plans: Dict[str, MitigationPlan] = {}
        for task_name, task_analysis in analysis.task_analyses.items():
            outcome = automation_outcomes.get(task_name)
            if outcome is not None and not outcome.human_remains_in_loop:
                # Fully automated away: no human-facing mitigation needed.
                plans[task_name] = MitigationPlan(subject=task_name)
                continue
            plans[task_name] = suggest_mitigations(
                task_analysis.failures, catalog=self.mitigation_catalog
            )
        return plans

    # -- full process ---------------------------------------------------------

    def _residual_risk(
        self,
        analysis: SystemAnalysis,
        automation_outcomes: Dict[str, TaskAutomationOutcome],
        plans: Dict[str, MitigationPlan],
    ) -> float:
        """Planning estimate of the risk remaining after this pass."""
        residual = 0.0
        for task_name, task_analysis in analysis.task_analyses.items():
            outcome = automation_outcomes.get(task_name)
            task_risk = task_analysis.failures.total_risk()
            if outcome is not None and not outcome.human_remains_in_loop:
                # Automated tasks retain a small residual for automation error.
                automation = self.system.task_named(task_name).automation
                residual += task_risk * (1.0 - automation.automation_accuracy) * 0.5
                continue
            plan = plans.get(task_name)
            if plan is not None and plan.recommendations:
                residual += task_risk * (1.0 - self.mitigation_discount)
            else:
                residual += task_risk
        return residual

    def run_pass(self, pass_number: int = 1) -> ProcessPass:
        """Run a single pass through the four steps."""
        tasks = self.identify_tasks()
        analysis = self.identify_failures()
        automation_outcomes = self.evaluate_automation(analysis)
        plans = self.plan_mitigations(analysis, automation_outcomes)
        residual = self._residual_risk(analysis, automation_outcomes, plans)
        return ProcessPass(
            pass_number=pass_number,
            identified_tasks=[task.name for task in tasks],
            tasks_without_communication=[
                task.name for task in self.system.tasks_without_communication()
            ],
            automation_outcomes=automation_outcomes,
            analysis=analysis,
            mitigation_plans=plans,
            residual_risk=residual,
        )

    def run(self, max_passes: int = 3) -> ProcessResult:
        """Run the iterative process until risk is acceptable or it converges.

        After the first pass, later passes model the designer "revisit[ing]
        some or all of the steps": each applied top mitigation discounts the
        corresponding risk, and tasks whose human reliability remains below
        the best automated alternative get reconsidered for automation.
        """
        if max_passes < 1:
            raise ProcessError("max_passes must be at least 1")
        passes: List[ProcessPass] = []
        previous_residual: Optional[float] = None
        discount = self.mitigation_discount
        for pass_number in range(1, max_passes + 1):
            self.mitigation_discount = min(0.95, discount * pass_number)
            process_pass = self.run_pass(pass_number)
            passes.append(process_pass)
            if process_pass.residual_risk <= self.acceptable_risk:
                break
            if previous_residual is not None and process_pass.residual_risk >= previous_residual:
                break
            previous_residual = process_pass.residual_risk
        self.mitigation_discount = discount
        return ProcessResult(system_name=self.system.name, passes=passes)
