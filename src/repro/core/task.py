"""Task and system models: where humans enter the loop.

The framework is applied to *security-critical human tasks*: points where a
secure system relies on a human to perform a function whose failure would
compromise security.  This module defines:

* :class:`AutomationProfile` — how amenable a task is to partial or full
  automation (consulted in the task-automation step of the Figure-2
  process),
* :class:`HumanSecurityTask` — one human task, with its triggering
  communication, the design of the action the human must take, the
  capability requirements, the impediment environment and the receiver
  population expected to perform it, and
* :class:`SecureSystem` — a named collection of tasks representing the
  whole secure system under analysis.

Concrete system models (anti-phishing warnings, password policies, SSL
indicators, ...) are built from these types in :mod:`repro.systems`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .behavior import TaskDesign
from .communication import Communication
from .exceptions import ModelError, ValidationError
from .impediments import Environment
from .receiver import Capabilities, HumanReceiver, typical_receiver

__all__ = [
    "AutomationProfile",
    "HumanSecurityTask",
    "SecureSystem",
]


@dataclasses.dataclass(frozen=True)
class AutomationProfile:
    """How amenable a human task is to automation.

    The task-automation step of the human threat identification and
    mitigation process asks whether a human decision can be "replace[d]
    ... with well-chosen defaults or automated decision making".  The
    profile captures the considerations the paper and Edwards et al. raise:

    ``can_fully_automate``
        Whether a fully automated alternative is technically feasible.
    ``automation_accuracy``
        Accuracy of the best available automated alternative (0–1); the
        anti-phishing case hinges on "the false positive rate associated
        with the automated phishing detection tool".
    ``automation_false_positive_rate``
        False-positive rate of the automated alternative.
    ``human_information_advantage``
        Degree to which the human has context or knowledge the software
        cannot capture (0–1).  High values argue against automation.
    ``automation_cost``
        Relative cost/inconvenience of deploying the automated alternative
        (0–1).
    ``vendor_constraints``
        Free-text note on constraints such as "browser vendors believe they
        must offer users the override option".
    """

    can_fully_automate: bool = False
    automation_accuracy: float = 0.5
    automation_false_positive_rate: float = 0.1
    human_information_advantage: float = 0.5
    automation_cost: float = 0.3
    vendor_constraints: str = ""

    def __post_init__(self) -> None:
        for name in (
            "automation_accuracy",
            "automation_false_positive_rate",
            "human_information_advantage",
            "automation_cost",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ModelError(f"{name} must be in [0, 1], got {value}")

    def automation_advisable(self, human_reliability: float) -> bool:
        """Whether automating beats keeping the human in the loop.

        ``human_reliability`` is the estimated probability that the human
        performs the task successfully.  Automation is advisable when a
        feasible automated alternative is more reliable than the human,
        the human holds no decisive information advantage, and the false
        positive cost is tolerable.
        """
        if not 0.0 <= human_reliability <= 1.0:
            raise ModelError("human_reliability must be in [0, 1]")
        if not self.can_fully_automate:
            return False
        if self.human_information_advantage >= 0.7:
            return False
        effective_automation = self.automation_accuracy * (
            1.0 - 0.5 * self.automation_false_positive_rate
        )
        return effective_automation > human_reliability


@dataclasses.dataclass
class HumanSecurityTask:
    """A single point where a secure system relies on a human.

    Parameters
    ----------
    name:
        Short identifier, e.g. ``"heed-antiphishing-warning"``.
    description:
        What the human is being relied on to do.
    communication:
        The security communication expected to trigger the behavior.  The
        paper notes that when a failure has *no* associated communication,
        the missing communication is itself the likely root cause; model
        that situation by passing ``None``.
    task_design:
        Design attributes of the action the human must perform.
    capability_requirements:
        Minimum capabilities the action demands (interpreted as thresholds
        by :meth:`repro.core.receiver.Capabilities.meets`).
    environment:
        Impediment context in which the communication is delivered.
    receivers:
        Representative receiver profiles for the expected population.
    security_critical:
        Whether failure of this task compromises security (task
        identification keeps only the critical ones).
    automation:
        Automation profile consulted by the task-automation step.
    desired_action:
        Short statement of the action that constitutes success.
    failure_consequence:
        Short statement of what goes wrong when the task fails.
    """

    name: str
    description: str = ""
    communication: Optional[Communication] = None
    task_design: TaskDesign = dataclasses.field(default_factory=TaskDesign)
    capability_requirements: Capabilities = dataclasses.field(
        default_factory=lambda: Capabilities(
            knowledge_to_act=0.0,
            cognitive_skill=0.0,
            physical_skill=0.0,
            memory_capacity=0.0,
            has_required_software=False,
            has_required_device=False,
        )
    )
    environment: Environment = dataclasses.field(default_factory=Environment)
    receivers: List[HumanReceiver] = dataclasses.field(default_factory=list)
    security_critical: bool = True
    automation: AutomationProfile = dataclasses.field(default_factory=AutomationProfile)
    desired_action: str = ""
    failure_consequence: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("task name must be non-empty")
        if not self.receivers:
            self.receivers = [typical_receiver()]

    @property
    def has_communication(self) -> bool:
        return self.communication is not None

    @property
    def primary_receiver(self) -> HumanReceiver:
        """The first (most representative) receiver profile."""
        return self.receivers[0]

    def receiver_named(self, name: str) -> HumanReceiver:
        """Look up a receiver profile by name."""
        for receiver in self.receivers:
            if receiver.name == name:
                return receiver
        raise ModelError(f"no receiver named {name!r} in task {self.name!r}")

    def capability_gap(self, receiver: Optional[HumanReceiver] = None) -> Dict[str, float]:
        """Per-dimension shortfall of a receiver against the requirements.

        Returns a mapping from capability dimension to the (non-negative)
        amount by which the receiver falls short; empty when the receiver
        meets every requirement.
        """
        receiver = receiver or self.primary_receiver
        capabilities = receiver.capabilities
        requirements = self.capability_requirements
        gaps: Dict[str, float] = {}
        for dimension in ("knowledge_to_act", "cognitive_skill", "physical_skill", "memory_capacity"):
            shortfall = getattr(requirements, dimension) - getattr(capabilities, dimension)
            if shortfall > 1e-9:
                gaps[dimension] = shortfall
        if requirements.has_required_software and not capabilities.has_required_software:
            gaps["has_required_software"] = 1.0
        if requirements.has_required_device and not capabilities.has_required_device:
            gaps["has_required_device"] = 1.0
        return gaps

    def validate(self) -> None:
        """Raise :class:`ValidationError` on inconsistencies."""
        if self.security_critical and not self.desired_action:
            raise ValidationError(
                f"security-critical task {self.name!r} must state its desired action"
            )
        if not self.receivers:
            raise ValidationError(f"task {self.name!r} has no receiver profiles")


@dataclasses.dataclass
class SecureSystem:
    """A secure system: a named collection of human security tasks."""

    name: str
    description: str = ""
    tasks: List[HumanSecurityTask] = dataclasses.field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("system name must be non-empty")
        names = [task.name for task in self.tasks]
        if len(names) != len(set(names)):
            raise ModelError(f"duplicate task names in system {self.name!r}")

    def __iter__(self) -> Iterator[HumanSecurityTask]:
        return iter(self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)

    def add_task(self, task: HumanSecurityTask) -> "SecureSystem":
        """Add a task, enforcing name uniqueness; returns ``self``."""
        if any(existing.name == task.name for existing in self.tasks):
            raise ModelError(f"task {task.name!r} already present in system {self.name!r}")
        self.tasks.append(task)
        return self

    def task_named(self, name: str) -> HumanSecurityTask:
        for task in self.tasks:
            if task.name == name:
                return task
        raise ModelError(f"no task named {name!r} in system {self.name!r}")

    def security_critical_tasks(self) -> List[HumanSecurityTask]:
        """The subset of tasks whose failure compromises security.

        This is the output of the *task identification* step of the
        Figure-2 process.
        """
        return [task for task in self.tasks if task.security_critical]

    def tasks_without_communication(self) -> List[HumanSecurityTask]:
        """Security-critical tasks with no associated communication.

        The paper singles these out: "if a human security failure occurs
        and there is no associated communication that should have triggered
        a security-critical action, the lack of communication is likely at
        least partially responsible for the failure."
        """
        return [
            task
            for task in self.security_critical_tasks()
            if not task.has_communication
        ]

    def validate(self) -> None:
        """Validate the system and every task in it."""
        for task in self.tasks:
            task.validate()
