"""The behavior component: outcomes, error types, gulfs, and predictability.

Section 2.4 of the paper describes what can go wrong even after a receiver
has noticed, understood, and decided to act on a security communication:

* the **Gulf of Execution** — the receiver cannot find or operate the
  mechanism needed to carry out the intended action (Norman),
* the **Gulf of Evaluation** — the receiver cannot tell whether the action
  achieved the desired outcome (Norman),
* **mistakes, lapses and slips** — the three error types of Reason's
  Generic Error-Modeling System (GEMS), and
* **predictable behavior** — the receiver succeeds, but in a way an
  attacker can predict and exploit (e.g. graphical-password hot spots).

This module defines the behavior-stage vocabulary used by the analysis and
simulation layers.  The deeper GEMS and Norman sub-models live in
:mod:`repro.gems` and :mod:`repro.norman`; this module intentionally keeps
only the pieces the framework itself references.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Tuple

from .exceptions import ModelError

__all__ = [
    "BehaviorOutcome",
    "OUTCOME_ORDER",
    "outcome_code",
    "BehaviorFailureKind",
    "TaskDesign",
    "BehaviorAssessment",
    "assess_behavior_design",
]


class BehaviorFailureKind(enum.Enum):
    """Ways the behavior stage can fail (Section 2.4)."""

    MISTAKE = "mistake"
    LAPSE = "lapse"
    SLIP = "slip"
    GULF_OF_EXECUTION = "gulf_of_execution"
    GULF_OF_EVALUATION = "gulf_of_evaluation"
    PREDICTABLE_BEHAVIOR = "predictable_behavior"

    @property
    def description(self) -> str:
        return _FAILURE_DESCRIPTIONS[self]


_FAILURE_DESCRIPTIONS: Dict[BehaviorFailureKind, str] = {
    BehaviorFailureKind.MISTAKE: (
        "The receiver formulated an action plan that will not achieve the "
        "desired goal (GEMS mistake)."
    ),
    BehaviorFailureKind.LAPSE: (
        "The receiver formulated a suitable plan but forgot to perform a "
        "planned action, e.g. skipped a step (GEMS lapse)."
    ),
    BehaviorFailureKind.SLIP: (
        "The receiver performed an action incorrectly, e.g. pressed the "
        "wrong button or selected the wrong menu item (GEMS slip)."
    ),
    BehaviorFailureKind.GULF_OF_EXECUTION: (
        "The receiver intends to act but cannot find or operate the "
        "mechanism the system provides for the action (Norman)."
    ),
    BehaviorFailureKind.GULF_OF_EVALUATION: (
        "The receiver completed an action but cannot determine whether it "
        "achieved the desired outcome (Norman)."
    ),
    BehaviorFailureKind.PREDICTABLE_BEHAVIOR: (
        "The receiver completed the action, but in a predictable way an "
        "attacker can exploit (e.g. graphical-password hot spots)."
    ),
}


class BehaviorOutcome(enum.Enum):
    """Terminal outcome of one receiver-communication pass."""

    SUCCESS = "success"
    SUCCESS_BUT_PREDICTABLE = "success_but_predictable"
    FAILED_SAFE = "failed_safe"
    FAILURE = "failure"
    NO_ACTION = "no_action"

    @property
    def hazard_avoided(self) -> bool:
        """Whether the security goal was nevertheless achieved.

        The anti-phishing case study observes that users who repeatedly
        clicked the emailed link were "actually making a mistake" yet the
        system still "fail[ed] safely": the hazard was avoided.  That is the
        ``FAILED_SAFE`` outcome.
        """
        return self in (
            BehaviorOutcome.SUCCESS,
            BehaviorOutcome.SUCCESS_BUT_PREDICTABLE,
            BehaviorOutcome.FAILED_SAFE,
        )


#: Canonical outcome order used to encode outcomes as integers wherever
#: receivers are processed as arrays (the pipeline kernel, the batch tally).
#: Declared here — next to the enum — so the core traversal kernel and the
#: simulation metrics layer share one encoding by construction.
OUTCOME_ORDER = tuple(BehaviorOutcome)
_OUTCOME_CODES = {outcome: code for code, outcome in enumerate(OUTCOME_ORDER)}


def outcome_code(outcome: "BehaviorOutcome") -> int:
    """Integer code of a behavior outcome (index into :data:`OUTCOME_ORDER`)."""
    return _OUTCOME_CODES[outcome]


@dataclasses.dataclass(frozen=True)
class TaskDesign:
    """Design attributes of the action a communication asks the receiver to take.

    These attributes drive the behavior-stage failure likelihoods:

    ``steps``
        Number of discrete steps required; more steps mean more
        opportunities for lapses.
    ``controls_discoverable``
        How easy it is to find the interface components or hardware that
        must be manipulated (small values widen the gulf of execution).
    ``feedback_quality``
        How clearly the system communicates whether the action succeeded
        (small values widen the gulf of evaluation).
    ``controls_distinguishable``
        How hard it is to confuse the relevant control with a neighboring
        one (small values invite slips).
    ``guidance_through_steps``
        Whether the system provides cues guiding the receiver through the
        step sequence (prevents lapses).
    ``requires_unpredictable_choice``
        Whether the task asks the receiver to produce something that should
        be unpredictable (a password, click points); only then is
        predictability a relevant failure mode.
    ``choice_predictability``
        How predictable typical receiver choices are when
        ``requires_unpredictable_choice`` is set (e.g. hot-spot
        concentration in click-based graphical passwords).
    """

    steps: int = 1
    controls_discoverable: float = 0.8
    feedback_quality: float = 0.7
    controls_distinguishable: float = 0.8
    guidance_through_steps: bool = False
    requires_unpredictable_choice: bool = False
    choice_predictability: float = 0.0

    def __post_init__(self) -> None:
        if self.steps < 0:
            raise ModelError("steps must be non-negative")
        for name in (
            "controls_discoverable",
            "feedback_quality",
            "controls_distinguishable",
            "choice_predictability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ModelError(f"{name} must be in [0, 1], got {value}")

    @property
    def gulf_of_execution(self) -> float:
        """Width of the gulf of execution (0 = no gulf, 1 = impassable)."""
        return 1.0 - self.controls_discoverable

    @property
    def gulf_of_evaluation(self) -> float:
        """Width of the gulf of evaluation (0 = no gulf, 1 = impassable)."""
        return 1.0 - self.feedback_quality

    @property
    def lapse_exposure(self) -> float:
        """Exposure to lapses from multi-step sequences without guidance."""
        if self.steps <= 1:
            return 0.0
        per_step = 0.03 if self.guidance_through_steps else 0.08
        return min(1.0, per_step * (self.steps - 1))

    @property
    def slip_exposure(self) -> float:
        """Exposure to slips from confusable controls."""
        return 0.5 * (1.0 - self.controls_distinguishable)


@dataclasses.dataclass(frozen=True)
class BehaviorAssessment:
    """Design-time assessment of the behavior stage for a task."""

    success_likelihood: float
    dominant_risks: Tuple[BehaviorFailureKind, ...]
    risk_scores: Dict[BehaviorFailureKind, float]
    notes: Tuple[str, ...] = ()

    def risk_for(self, kind: BehaviorFailureKind) -> float:
        return self.risk_scores.get(kind, 0.0)


def assess_behavior_design(design: TaskDesign, receiver_capability: float = 0.6,
                           receiver_knowledge: float = 0.5) -> BehaviorAssessment:
    """Assess the behavior-stage risks of a task design.

    Parameters
    ----------
    design:
        The task design under analysis.
    receiver_capability:
        Composite capability score of the expected receiver population
        (0–1); low capability amplifies execution-gulf and slip risks.
    receiver_knowledge:
        Knowledge-to-act score; low knowledge amplifies mistake risk.

    Returns
    -------
    BehaviorAssessment
        Per-failure-kind risk scores, the dominant risks (those above a
        0.2 threshold, ordered by score), and an overall success
        likelihood.
    """
    if not 0.0 <= receiver_capability <= 1.0:
        raise ModelError("receiver_capability must be in [0, 1]")
    if not 0.0 <= receiver_knowledge <= 1.0:
        raise ModelError("receiver_knowledge must be in [0, 1]")

    capability_penalty = 1.0 + (0.5 - receiver_capability)

    risks: Dict[BehaviorFailureKind, float] = {
        BehaviorFailureKind.MISTAKE: min(1.0, 0.6 * (1.0 - receiver_knowledge)),
        BehaviorFailureKind.LAPSE: min(1.0, design.lapse_exposure * capability_penalty),
        BehaviorFailureKind.SLIP: min(1.0, design.slip_exposure * capability_penalty),
        BehaviorFailureKind.GULF_OF_EXECUTION: min(
            1.0, design.gulf_of_execution * capability_penalty
        ),
        BehaviorFailureKind.GULF_OF_EVALUATION: design.gulf_of_evaluation,
    }
    if design.requires_unpredictable_choice:
        risks[BehaviorFailureKind.PREDICTABLE_BEHAVIOR] = design.choice_predictability
    else:
        risks[BehaviorFailureKind.PREDICTABLE_BEHAVIOR] = 0.0

    failure_mass = 1.0
    for kind in (
        BehaviorFailureKind.MISTAKE,
        BehaviorFailureKind.LAPSE,
        BehaviorFailureKind.SLIP,
        BehaviorFailureKind.GULF_OF_EXECUTION,
    ):
        failure_mass *= 1.0 - 0.6 * risks[kind]
    success_likelihood = max(0.0, min(1.0, failure_mass))

    dominant = tuple(
        kind
        for kind, score in sorted(risks.items(), key=lambda item: item[1], reverse=True)
        if score >= 0.2
    )

    notes: List[str] = []
    if risks[BehaviorFailureKind.GULF_OF_EXECUTION] >= 0.3:
        notes.append(
            "Gulf of execution is wide: include clear instructions and make the "
            "controls needed for the action readily apparent."
        )
    if risks[BehaviorFailureKind.GULF_OF_EVALUATION] >= 0.3:
        notes.append(
            "Gulf of evaluation is wide: provide feedback so users can tell "
            "whether their action achieved the desired outcome."
        )
    if risks[BehaviorFailureKind.LAPSE] >= 0.2:
        notes.append(
            "Multi-step task without guidance: provide cues through the step "
            "sequence to prevent lapses."
        )
    if risks[BehaviorFailureKind.SLIP] >= 0.2:
        notes.append(
            "Controls are confusable: arrange and label them so they are not "
            "mistaken for one another."
        )
    if risks[BehaviorFailureKind.PREDICTABLE_BEHAVIOR] >= 0.3:
        notes.append(
            "User choices are predictable: encourage less predictable behavior "
            "or prohibit choices that fit known patterns."
        )

    return BehaviorAssessment(
        success_likelihood=success_likelihood,
        dominant_risks=dominant,
        risk_scores=risks,
        notes=tuple(notes),
    )
