"""Reason's Generic Error-Modeling System (GEMS).

The behavior stage of the framework distinguishes mistakes, lapses, and
slips — the three error types of James Reason's GEMS.  This package
provides the GEMS taxonomy, a rule-based classifier that maps an observed
error description (planning correctness, execution correctness, omission)
to an error type, and the performance-level taxonomy (skill-, rule-, and
knowledge-based behavior) GEMS builds on.
"""

from .errors import (
    ErrorObservation,
    ErrorType,
    GEMSError,
    PerformanceLevel,
    classify_error,
    design_countermeasures,
)

__all__ = [
    "ErrorType",
    "PerformanceLevel",
    "GEMSError",
    "ErrorObservation",
    "classify_error",
    "design_countermeasures",
]
