"""GEMS error types, classification, and design countermeasures.

Section 2.4 of the paper summarizes Reason's Generic Error-Modeling System:

* **Mistakes** occur when people formulate action plans that will not
  achieve the desired goal (the naïve "it's from someone I know so the
  attachment is safe" plan).
* **Lapses** occur when people formulate suitable plans but forget to
  perform a planned action (skip a step).
* **Slips** occur when people perform an action incorrectly (press the
  wrong button, select the wrong menu item).

The paper then gives the corresponding design guidance: clear, specific
instructions to prevent mistakes; fewer steps and sequence cues to prevent
lapses; accessible, well-labelled, distinguishable controls to prevent
slips.  :func:`design_countermeasures` returns exactly that mapping.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional, Tuple

from ..core.exceptions import ModelError

__all__ = [
    "ErrorType",
    "PerformanceLevel",
    "GEMSError",
    "ErrorObservation",
    "classify_error",
    "design_countermeasures",
]


class ErrorType(enum.Enum):
    """The three GEMS error types referenced by the framework."""

    MISTAKE = "mistake"
    LAPSE = "lapse"
    SLIP = "slip"

    @property
    def description(self) -> str:
        return _DESCRIPTIONS[self]

    @property
    def is_planning_error(self) -> bool:
        """Mistakes are planning errors; lapses and slips are execution errors."""
        return self is ErrorType.MISTAKE


_DESCRIPTIONS: Dict[ErrorType, str] = {
    ErrorType.MISTAKE: (
        "The action plan itself will not achieve the desired goal, even if "
        "executed perfectly."
    ),
    ErrorType.LAPSE: (
        "The plan is suitable, but a planned action is forgotten or a step is skipped."
    ),
    ErrorType.SLIP: (
        "The plan is suitable, but an action is performed incorrectly "
        "(wrong button, wrong menu item)."
    ),
}


class PerformanceLevel(enum.Enum):
    """Rasmussen performance levels on which GEMS situates its error types.

    Slips and lapses occur during skill-based (largely automatic)
    performance; mistakes occur during rule-based or knowledge-based
    performance, when the person is consciously selecting or constructing a
    plan.
    """

    SKILL_BASED = "skill_based"
    RULE_BASED = "rule_based"
    KNOWLEDGE_BASED = "knowledge_based"

    @classmethod
    def typical_for(cls, error_type: ErrorType) -> Tuple["PerformanceLevel", ...]:
        if error_type is ErrorType.MISTAKE:
            return (cls.RULE_BASED, cls.KNOWLEDGE_BASED)
        return (cls.SKILL_BASED,)


@dataclasses.dataclass(frozen=True)
class GEMSError:
    """A classified error: type, performance level, and narrative."""

    error_type: ErrorType
    performance_level: PerformanceLevel
    narrative: str = ""

    def __post_init__(self) -> None:
        allowed = PerformanceLevel.typical_for(self.error_type)
        if self.performance_level not in allowed:
            raise ModelError(
                f"{self.error_type.value} errors occur at "
                f"{[level.value for level in allowed]} performance, "
                f"not {self.performance_level.value}"
            )


@dataclasses.dataclass(frozen=True)
class ErrorObservation:
    """An observed human error, described by what actually happened.

    Attributes
    ----------
    plan_would_achieve_goal:
        Whether the plan the person formulated would have achieved the
        security goal if executed perfectly.
    action_omitted:
        Whether a planned action (or step) was skipped entirely.
    action_performed_incorrectly:
        Whether an action was attempted but executed wrongly.
    knowledge_gap:
        Whether the person lacked the knowledge needed to form a correct
        plan (pushes mistakes toward the knowledge-based level).
    narrative:
        Free-text description of the incident.
    """

    plan_would_achieve_goal: bool
    action_omitted: bool = False
    action_performed_incorrectly: bool = False
    knowledge_gap: bool = False
    narrative: str = ""


def classify_error(observation: ErrorObservation) -> GEMSError:
    """Classify an observed error into the GEMS taxonomy.

    The classification is hierarchical, mirroring how GEMS is applied in
    practice: a faulty plan is a mistake regardless of execution; given a
    sound plan, an omitted action is a lapse and an incorrectly performed
    action is a slip.

    Raises
    ------
    ModelError
        If the observation describes no error at all (sound plan, nothing
        omitted, nothing performed incorrectly).
    """
    if not observation.plan_would_achieve_goal:
        level = (
            PerformanceLevel.KNOWLEDGE_BASED
            if observation.knowledge_gap
            else PerformanceLevel.RULE_BASED
        )
        return GEMSError(ErrorType.MISTAKE, level, observation.narrative)
    if observation.action_omitted:
        return GEMSError(ErrorType.LAPSE, PerformanceLevel.SKILL_BASED, observation.narrative)
    if observation.action_performed_incorrectly:
        return GEMSError(ErrorType.SLIP, PerformanceLevel.SKILL_BASED, observation.narrative)
    raise ModelError("observation describes no error (plan sound, execution complete and correct)")


def design_countermeasures(error_type: ErrorType) -> List[str]:
    """Design guidance for preventing each error type (Section 2.4)."""
    if error_type is ErrorType.MISTAKE:
        return [
            "Develop clear communications that convey specific instructions so "
            "users form correct action plans.",
            "Correct inaccurate mental models through training and explanations "
            "of why the hazard is dangerous.",
        ]
    if error_type is ErrorType.LAPSE:
        return [
            "Minimize the number of steps necessary to complete the task.",
            "Provide cues that guide users through the sequence of steps.",
            "Remind users when a task remains to be done.",
        ]
    return [
        "Locate the necessary controls where they are accessible.",
        "Arrange and label controls so they will not be mistaken for one another.",
    ]
