"""``/analyze`` — the synchronous analytic walk, always inline, cached.

The analytic path is cheap (no receivers, no rounds), so it never
becomes a job — but it *is* served through the content-keyed cache:
an analytic row's identity is ``(variant_hash, task)`` alone, so a
repeated policy question costs one dictionary lookup.
"""

from __future__ import annotations

from typing import Any, Dict

from ..experiments.design import Experiment, VariantSpec
from ..experiments.results import ExperimentError
from ..io.experiments_io import resultset_to_dict
from .app import Request, Router
from .errors import BadRequestError
from .requests import (
    body_str,
    check_fields,
    require_body,
    validate_params,
)
from .state import ServiceState

__all__ = ["router"]

router = Router()

#: Body fields ``/analyze`` accepts — no simulation settings by design.
ANALYZE_FIELDS = ("scenario", "params", "task", "name")


@router.post("/analyze")
def analyze(state: ServiceState, request: Request) -> Dict[str, Any]:
    """Run (or serve) the analytic walk over one scenario variant."""
    body = require_body(request.body)
    check_fields(body, ANALYZE_FIELDS)
    scenario = body_str(body, "scenario")
    if scenario is None:
        raise BadRequestError("field 'scenario' is required", field="scenario")
    params = validate_params(scenario, body.get("params", {}))
    name = body_str(body, "name", "analyze") or "analyze"
    try:
        experiment = Experiment(
            name=name,
            variants=(VariantSpec(scenario=scenario, params=params),),
            paths=("analyze",),
            task=body_str(body, "task"),
            seed_strategy="shared",
        )
    except ExperimentError as error:
        raise BadRequestError(str(error)) from error
    outcome = state.run_inline(experiment)
    payload = resultset_to_dict(outcome.resultset)
    return {
        "status": "completed",
        "experiment": experiment.name,
        "row": payload["rows"][0],
        "cache": outcome.cache_summary(),
    }
