"""The WSGI routing core: pure request handling, JSON in, JSON out.

Decomposed FastAPI-style: each ``router_*`` module declares its routes on
a module-level :class:`Router` (``@router.get("/jobs/{job_id}")`` etc.),
and :func:`create_app` collects them into one :class:`ServiceApp`.  The
app is dependency-free — requests parse with the stdlib, responses are
canonical sorted-key JSON — and :meth:`ServiceApp.handle` is a pure
``(method, path, body) -> (status, payload)`` function, so the test
suite drives the full stack through ``wsgiref`` test environs without a
socket anywhere.

Error mapping is uniform: :class:`~repro.service.errors.ApiError`
subclasses carry their own status and structured body; a
:class:`~repro.core.exceptions.ModelError` escaping a handler is a
validation failure (422) because every ``ModelError`` in this codebase
is a rejected parameter/scenario value; other :class:`ReproError`\\ s are
malformed requests (400); anything else is a 500 that names the
exception class but never unwinds the server.
"""

from __future__ import annotations

import dataclasses
import json
import urllib.parse
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

from ..core.exceptions import ModelError, ReproError
from .errors import ApiError, BadRequestError, MethodNotAllowedError, NotFoundError
from .state import ServiceConfig, ServiceState

__all__ = ["Request", "Router", "ServiceApp", "create_app"]

#: Reason phrases for the statuses the service emits.
_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
}

#: WSGI aliases (``wsgiref.types`` needs 3.11; the service supports 3.10).
Environ = Dict[str, Any]
StartResponse = Callable[..., Any]


@dataclasses.dataclass(frozen=True)
class Request:
    """One parsed request as the handlers see it."""

    method: str
    path: str
    path_params: Dict[str, str]
    query: Dict[str, str]
    body: Optional[Dict[str, Any]]


#: A handler returns a payload (200) or an explicit ``(status, payload)``.
HandlerResult = Union[Dict[str, Any], Tuple[int, Dict[str, Any]]]
Handler = Callable[[ServiceState, Request], HandlerResult]


@dataclasses.dataclass(frozen=True)
class Route:
    """One method + path pattern; ``{name}`` segments capture path params."""

    method: str
    pattern: str
    handler: Handler

    @property
    def segments(self) -> Tuple[str, ...]:
        return tuple(part for part in self.pattern.split("/") if part)

    def match(self, path_segments: Tuple[str, ...]) -> Optional[Dict[str, str]]:
        """Captured path params when the path matches, else ``None``."""
        segments = self.segments
        if len(segments) != len(path_segments):
            return None
        captured: Dict[str, str] = {}
        for expected, actual in zip(segments, path_segments):
            if expected.startswith("{") and expected.endswith("}"):
                captured[expected[1:-1]] = urllib.parse.unquote(actual)
            elif expected != actual:
                return None
        return captured


class Router:
    """A router module's route collection (``@router.get``/``.post``)."""

    def __init__(self) -> None:
        self.routes: List[Route] = []

    def _register(self, method: str, pattern: str) -> Callable[[Handler], Handler]:
        def decorator(handler: Handler) -> Handler:
            self.routes.append(Route(method=method, pattern=pattern, handler=handler))
            return handler

        return decorator

    def get(self, pattern: str) -> Callable[[Handler], Handler]:
        return self._register("GET", pattern)

    def post(self, pattern: str) -> Callable[[Handler], Handler]:
        return self._register("POST", pattern)


class ServiceApp:
    """The WSGI application over one :class:`ServiceState`."""

    def __init__(self, state: ServiceState, routers: Iterable[Router]) -> None:
        self.state = state
        self.routes: List[Route] = [
            route for router in routers for route in router.routes
        ]

    # -- pure core ---------------------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        query: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """Dispatch one request; always returns ``(status, JSON payload)``."""
        path_segments = tuple(part for part in path.split("/") if part)
        try:
            allowed: List[str] = []
            for route in self.routes:
                captured = route.match(path_segments)
                if captured is None:
                    continue
                if route.method != method:
                    allowed.append(route.method)
                    continue
                request = Request(
                    method=method,
                    path=path,
                    path_params=captured,
                    query=dict(query or {}),
                    body=body,
                )
                result = route.handler(self.state, request)
                if isinstance(result, tuple):
                    return result
                return 200, result
            if allowed:
                raise MethodNotAllowedError(
                    f"{path!r} does not allow {method}",
                    allowed=sorted(set(allowed)),
                )
            raise NotFoundError(f"no route for {path!r}", path=path)
        except ApiError as error:
            return error.status, error.payload()
        except ModelError as error:
            # Every ModelError here is a rejected scenario/parameter value.
            return 422, {"error": "validation", "message": str(error)}
        except ReproError as error:
            return 400, {"error": "bad_request", "message": str(error)}
        except Exception as error:  # the server must answer, not unwind
            return 500, {
                "error": "internal",
                "message": f"{type(error).__name__}: {error}",
            }

    # -- WSGI --------------------------------------------------------------------

    def __call__(
        self, environ: Environ, start_response: StartResponse
    ) -> Iterable[bytes]:
        method = str(environ.get("REQUEST_METHOD", "GET")).upper()
        path = str(environ.get("PATH_INFO", "/"))
        query = dict(
            urllib.parse.parse_qsl(str(environ.get("QUERY_STRING", "")))
        )
        try:
            body = self._read_body(environ)
        except BadRequestError as error:
            status, payload = error.status, error.payload()
        else:
            status, payload = self.handle(method, path, body=body, query=query)
        data = json.dumps(payload, sort_keys=True).encode("utf-8")
        start_response(
            f"{status} {_REASONS.get(status, 'Unknown')}",
            [
                ("Content-Type", "application/json"),
                ("Content-Length", str(len(data))),
            ],
        )
        return [data]

    @staticmethod
    def _read_body(environ: Environ) -> Optional[Dict[str, Any]]:
        """The request's JSON object body, if any."""
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except (TypeError, ValueError):
            length = 0
        if length <= 0:
            return None
        stream = environ.get("wsgi.input")
        if stream is None:
            return None
        raw = stream.read(length)
        if isinstance(raw, str):  # pragma: no cover - non-bytes test streams
            raw = raw.encode("utf-8")
        try:
            parsed = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise BadRequestError(f"request body is not valid JSON: {error}") from error
        if not isinstance(parsed, dict):
            raise BadRequestError("request body must be a JSON object")
        return parsed


def create_app(
    config: Optional[ServiceConfig] = None,
    state: Optional[ServiceState] = None,
) -> ServiceApp:
    """Assemble the service from every router module.

    Pass either a ready :class:`ServiceState` (tests share one across an
    app and direct store access) or a :class:`ServiceConfig` to build a
    fresh one.  Router modules import lazily here, keeping each router a
    leaf module free of import cycles with the core.
    """
    if state is None:
        if config is None:
            raise ValueError("create_app needs a ServiceConfig or a ServiceState")
        state = ServiceState(config)
    from . import (
        router_analyze,
        router_health,
        router_results,
        router_scenarios,
        router_simulate,
    )

    return ServiceApp(
        state,
        [
            router_health.router,
            router_scenarios.router,
            router_analyze.router,
            router_simulate.router,
            router_results.router,
        ],
    )
