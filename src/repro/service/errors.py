"""Structured API errors for the service layer.

Every error a handler raises maps to one JSON error body with a stable
``error`` kind, an HTTP status, and optional structured detail fields —
most importantly ``parameter``, which validation errors use to *name*
the offending scenario parameter (the 422 contract of the service).
These classes live in their own module so the routing core, the request
builders, and the routers can all raise them without import cycles.
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = [
    "ApiError",
    "BadRequestError",
    "NotFoundError",
    "MethodNotAllowedError",
    "ValidationFailure",
]


class ApiError(Exception):
    """An error with a structured JSON body and an HTTP status."""

    status: int = 500
    kind: str = "internal"

    def __init__(self, message: str, **details: Any) -> None:
        super().__init__(message)
        self.message = message
        self.details: Dict[str, Any] = dict(details)

    def payload(self) -> Dict[str, Any]:
        """The JSON error body served for this error."""
        body: Dict[str, Any] = {"error": self.kind, "message": self.message}
        body.update(self.details)
        return body


class BadRequestError(ApiError):
    """Malformed request: bad JSON, missing field, inconsistent spec."""

    status = 400
    kind = "bad_request"


class NotFoundError(ApiError):
    """Unknown route, job id, or result row."""

    status = 404
    kind = "not_found"


class MethodNotAllowedError(ApiError):
    """The path exists but not under this HTTP method."""

    status = 405
    kind = "method_not_allowed"


class ValidationFailure(ApiError):
    """A request value failed scenario/parameter validation (HTTP 422).

    When the failure is attributable to one parameter, the ``parameter``
    detail names it — the structured contract the test suite pins.
    """

    status = 422
    kind = "validation"
