"""``/simulate`` · ``/sweep`` · ``/jobs`` — execution and job observability.

Both run endpoints build the same validated
:class:`~repro.experiments.design.Experiment` and dispatch on cost:
requests under the configured ``inline_threshold`` receiver-round budget
run synchronously in the request (through the result cache, so repeats
do no engine work); anything larger — or any request with ``"detach":
true`` — is ledgered as an async job and returns ``202`` with the job
id.  Progress is observable two ways, both append-only: the job's event
stream (``/jobs/{id}/events``) and the shard checkpoint files the
backend writes into the job directory.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from ..io.experiments_io import resultset_to_dict
from .app import Request, Router
from .errors import BadRequestError
from .requests import build_experiment, run_cost
from .state import ServiceState

__all__ = ["router"]

router = Router()


def _dispatch(
    state: ServiceState, request: Request, default_name: str
) -> Tuple[int, Dict[str, Any]]:
    """Validate, then run inline or ledger an async job by cost."""
    if request.body is None:
        raise BadRequestError("this endpoint requires a JSON object body")
    body = dict(request.body)
    detach = body.pop("detach", None)
    if detach is not None and not isinstance(detach, bool):
        raise BadRequestError("field 'detach' must be a boolean", field="detach")
    experiment = build_experiment(body, default_name=default_name)
    cost = run_cost(experiment)
    if detach or cost > state.config.inline_threshold:
        record = state.submit_job(body)
        return 202, {
            "status": "submitted",
            "cost": cost,
            "job": record.describe(),
        }
    outcome = state.run_inline(experiment)
    return 200, {
        "status": "completed",
        "cost": cost,
        "experiment": experiment.name,
        "resultset": resultset_to_dict(outcome.resultset),
        "cache": outcome.cache_summary(),
    }


@router.post("/simulate")
def simulate(
    state: ServiceState, request: Request
) -> Tuple[int, Dict[str, Any]]:
    """One parameter point (``params``); small runs answer inline."""
    return _dispatch(state, request, default_name="simulate")


@router.post("/sweep")
def sweep(state: ServiceState, request: Request) -> Tuple[int, Dict[str, Any]]:
    """A parameter grid (``grid`` + optional ``base``); same dispatch."""
    return _dispatch(state, request, default_name="sweep")


@router.get("/jobs")
def list_jobs(state: ServiceState, request: Request) -> Dict[str, Any]:
    return {"jobs": state.jobs.list_jobs()}


@router.get("/jobs/{job_id}")
def get_job(state: ServiceState, request: Request) -> Dict[str, Any]:
    return {"job": state.jobs.get(request.path_params["job_id"]).describe()}


@router.get("/jobs/{job_id}/events")
def job_events(state: ServiceState, request: Request) -> Dict[str, Any]:
    """The job's full append-only event stream, oldest first."""
    job_id = request.path_params["job_id"]
    return {"job_id": job_id, "events": state.jobs.events(job_id)}
