"""Async job ledger and worker: append-only state, crash-visible restarts.

Every job the service accepts gets its own directory holding two kinds of
append-only streams: a ``service-events.jsonl`` state ledger (one
:class:`~repro.io.eventlog.EventLogWriter` line per transition —
``submitted`` / ``running`` / ``progress`` / ``done`` / ``failed``) and,
for sweep jobs, the ordinary shard checkpoint files the execution backend
writes as variants complete.  Nothing is ever rewritten: a server killed
mid-job leaves a recoverable prefix, and on restart :class:`JobStore`
replays every ledger, appends an explicit ``interrupted`` event to any
job the crash caught mid-flight, and surfaces the restart in the job's
event stream instead of hiding it — the same discipline as the shard
checkpoints themselves.  The ``service-`` file-name prefix is registered
in :data:`repro.io.shards.TELEMETRY_PREFIXES`, so checkpoint loaders
never mistake a ledger for a row checkpoint (and the wall-clock stamps
these telemetry streams carry stay out of result identity).

:class:`JobWorker` drains submitted jobs through an injectable executor
on one daemon thread (or synchronously via :meth:`JobWorker.run_pending`
for deterministic tests); an executor that raises marks the job
``failed`` with the error recorded in the stream, never unwinding the
server.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from ..io.eventlog import EventLogWriter, read_events
from .errors import NotFoundError

__all__ = [
    "JOB_EVENTS_FILENAME",
    "JOB_STATES",
    "JobRecord",
    "JobStore",
    "JobWorker",
]

PathLike = Union[str, Path]

#: Each job's state ledger, inside its own directory (``service-`` prefix:
#: a telemetry stream, never a row checkpoint).
JOB_EVENTS_FILENAME = "service-events.jsonl"

#: The states a job's ledger can fold to.
JOB_STATES = ("submitted", "running", "done", "failed")


@dataclasses.dataclass
class JobRecord:
    """The in-memory fold of one job's event ledger."""

    job_id: str
    status: str
    request: Dict[str, Any]
    submitted_at: Optional[float] = None
    updated_at: Optional[float] = None
    progress: Dict[str, Any] = dataclasses.field(default_factory=dict)
    summary: Dict[str, Any] = dataclasses.field(default_factory=dict)
    error: Optional[str] = None

    def describe(self) -> Dict[str, Any]:
        """The JSON view of this job served by the jobs endpoints."""
        return {
            "job_id": self.job_id,
            "status": self.status,
            "request": dict(self.request),
            "submitted_at": self.submitted_at,
            "updated_at": self.updated_at,
            "progress": dict(self.progress),
            "summary": dict(self.summary),
            "error": self.error,
        }


def _fold_events(
    job_id: str, events: List[Dict[str, Any]]
) -> Optional[JobRecord]:
    """Replay one ledger into a record; ``None`` when nothing committed."""
    record: Optional[JobRecord] = None
    for event in events:
        kind = event.get("event")
        stamp = event.get("time")
        if kind == "submitted":
            record = JobRecord(
                job_id=job_id,
                status="submitted",
                request=dict(event.get("request", {})),
                submitted_at=stamp,
                updated_at=stamp,
            )
            continue
        if record is None:
            continue  # a ledger must open with its submission
        record.updated_at = stamp
        if kind == "running":
            record.status = "running"
        elif kind == "progress":
            record.progress = dict(event.get("progress", {}))
        elif kind == "done":
            record.status = "done"
            record.summary = dict(event.get("summary", {}))
        elif kind in ("failed", "interrupted"):
            record.status = "failed"
            record.error = str(event.get("error", kind))
    return record


class JobStore:
    """Append-only, restart-recovering ledger of every job and its files."""

    def __init__(self, root: PathLike) -> None:
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._records: Dict[str, JobRecord] = {}
        self._writers: Dict[str, EventLogWriter] = {}
        self._recover()

    # -- recovery ----------------------------------------------------------------

    def _recover(self) -> None:
        """Replay every ledger; jobs the last process died holding get an
        explicit ``interrupted`` event appended (the restart is evidence,
        not something to paper over)."""
        for path in sorted(self._root.glob("*/" + JOB_EVENTS_FILENAME)):
            job_id = path.parent.name
            record = _fold_events(job_id, read_events(path))
            if record is None:
                continue
            self._records[job_id] = record
            if record.status in ("submitted", "running"):
                self._append(
                    job_id,
                    {
                        "event": "interrupted",
                        "error": "server restarted while the job was in flight",
                    },
                )
                record.status = "failed"
                record.error = "server restarted while the job was in flight"

    # -- internals ---------------------------------------------------------------

    def _writer(self, job_id: str) -> EventLogWriter:
        if job_id not in self._writers:
            self._writers[job_id] = EventLogWriter(
                self._root / job_id / JOB_EVENTS_FILENAME
            )
        return self._writers[job_id]

    def _append(self, job_id: str, event: Mapping[str, Any]) -> None:
        record = {"job": job_id, "time": time.time(), **dict(event)}
        self._writer(job_id).append(record)

    def _record(self, job_id: str) -> JobRecord:
        if job_id not in self._records:
            raise NotFoundError(f"unknown job {job_id!r}", job=job_id)
        return self._records[job_id]

    # -- submission and transitions ----------------------------------------------

    def submit(self, request: Mapping[str, Any]) -> JobRecord:
        """Open a new job ledger with its ``submitted`` event."""
        with self._lock:
            indices = [
                int(job_id.rsplit("-", 1)[1])
                for job_id in self._records
                if job_id.rsplit("-", 1)[-1].isdigit()
            ]
            job_id = f"job-{max(indices, default=0) + 1:04d}"
            (self._root / job_id).mkdir(parents=True, exist_ok=True)
            self._append(job_id, {"event": "submitted", "request": dict(request)})
            record = JobRecord(
                job_id=job_id, status="submitted", request=dict(request)
            )
            self._records[job_id] = record
            return record

    def mark_running(self, job_id: str) -> None:
        with self._lock:
            self._record(job_id).status = "running"
            self._append(job_id, {"event": "running"})

    def mark_progress(self, job_id: str, progress: Mapping[str, Any]) -> None:
        with self._lock:
            self._record(job_id).progress = dict(progress)
            self._append(job_id, {"event": "progress", "progress": dict(progress)})

    def mark_done(self, job_id: str, summary: Mapping[str, Any]) -> None:
        with self._lock:
            record = self._record(job_id)
            record.status = "done"
            record.summary = dict(summary)
            self._append(job_id, {"event": "done", "summary": dict(summary)})

    def mark_failed(self, job_id: str, error: str) -> None:
        with self._lock:
            record = self._record(job_id)
            record.status = "failed"
            record.error = error
            self._append(job_id, {"event": "failed", "error": error})

    # -- queries -----------------------------------------------------------------

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            return self._record(job_id)

    def list_jobs(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [
                self._records[job_id].describe()
                for job_id in sorted(self._records)
            ]

    def events(self, job_id: str) -> List[Dict[str, Any]]:
        """The committed event stream of one job, oldest first."""
        with self._lock:
            self._record(job_id)  # 404 before touching the filesystem
        return read_events(self._root / job_id / JOB_EVENTS_FILENAME)

    def job_dir(self, job_id: str) -> Path:
        """The directory holding one job's ledger and checkpoint files."""
        with self._lock:
            self._record(job_id)
        return self._root / job_id

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            by_status: Dict[str, int] = {}
            for record in self._records.values():
                by_status[record.status] = by_status.get(record.status, 0) + 1
            return {"jobs": len(self._records), "by_status": by_status}

    def close(self) -> None:
        with self._lock:
            for writer in self._writers.values():
                writer.close()
            self._writers.clear()


#: A job executor: runs one job to completion, returning the ``done``
#: summary; raising marks the job failed with the error in its stream.
JobExecutor = Callable[[str], Dict[str, Any]]


class JobWorker:
    """One worker draining submitted jobs through an executor.

    ``threaded=True`` (the server default) runs jobs on a daemon thread
    as they arrive; ``threaded=False`` queues them until a caller drains
    the queue with :meth:`run_pending` — the deterministic mode the WSGI
    tests drive, no real concurrency involved.
    """

    def __init__(
        self,
        store: JobStore,
        executor: JobExecutor,
        threaded: bool = True,
    ) -> None:
        self._store = store
        self._executor = executor
        self._threaded = threaded
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._thread: Optional[threading.Thread] = None
        if threaded:
            self._thread = threading.Thread(
                target=self._loop, name="repro-service-jobs", daemon=True
            )
            self._thread.start()

    def submit(self, job_id: str) -> None:
        self._queue.put(job_id)

    def run_pending(self) -> int:
        """Drain queued jobs synchronously (test mode); returns the count."""
        drained = 0
        while True:
            try:
                job_id = self._queue.get_nowait()
            except queue.Empty:
                return drained
            if job_id is None:
                return drained
            self._run_one(job_id)
            drained += 1

    def _loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            self._run_one(job_id)

    def _run_one(self, job_id: str) -> None:
        self._store.mark_running(job_id)
        try:
            summary = self._executor(job_id)
        except Exception as error:  # the job isolation boundary
            self._store.mark_failed(job_id, f"{type(error).__name__}: {error}")
        else:
            self._store.mark_done(job_id, summary)

    def close(self) -> None:
        if self._thread is not None:
            self._queue.put(None)
            self._thread.join(timeout=5.0)
            self._thread = None
