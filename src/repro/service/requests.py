"""Request parsing: JSON bodies into validated experiment specifications.

Every value a client sends is routed through the scenario's own
:class:`~repro.systems.parameters.ParameterSpace` — the service invents
no second validation layer, so the 422 bodies it returns name exactly
the parameter the experiment layer would reject.  Engine knobs
(``rounds``, ``rng_mode``, the habituation weights, ...) are accepted
**only** inside ``params``: that keeps every bit-relevant input inside
the row's ``variant_hash``, which is what makes the content-keyed cache
(:mod:`repro.service.cache`) collision-free.  ``batch_size`` and
``chunk_workers`` are not request fields at all — the engine's defaults
are a pure function of the accepted inputs, so they never need to appear
in a cache key.

:func:`run_with_cache` is the service's synchronous execution path: it
plans an experiment into per-variant work units, serves any unit whose
predicted row identities are all cached (exact first-computation bytes,
hit-counted), and runs only the rest — so re-submitting a sweep that was
ever computed does no engine work.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..core.exceptions import ModelError
from ..experiments.design import (
    EXPERIMENT_PATHS,
    SEED_STRATEGIES,
    Experiment,
    SweepSpec,
    VariantSpec,
)
from ..experiments.results import ExperimentError, ResultSet
from ..experiments.runner import VariantRun, plan_runs, run_variant
from ..io.experiments_io import result_row_from_dict, result_row_to_dict
from ..simulation.engine import SIMULATION_MODES, SimulationConfig
from ..systems.scenario import get_scenario, variant_hash
from .cache import CacheKey, ResultCache, row_cache_key
from .errors import BadRequestError, ValidationFailure

__all__ = [
    "validate_params",
    "build_experiment",
    "run_cost",
    "predicted_run_keys",
    "run_with_cache",
]

#: Engine defaults the realized row provenance falls back to when the
#: request leaves the matching knob unset — read from the dataclass
#: declaration so a changed engine default cannot desynchronize the
#: predicted cache keys.
_ENGINE_DEFAULT_RNG_MODE = str(
    SimulationConfig.__dataclass_fields__["rng_mode"].default
)
_ENGINE_DEFAULT_ROUNDS = int(
    SimulationConfig.__dataclass_fields__["rounds"].default  # type: ignore[arg-type]
)

#: Body fields the simulate/sweep endpoints accept; anything else is a
#: 400 — engine knobs must travel inside ``params`` (see module doc).
EXPERIMENT_FIELDS = (
    "scenario",
    "params",
    "grid",
    "base",
    "n_receivers",
    "seed",
    "mode",
    "task",
    "paths",
    "seed_strategy",
    "name",
    "detach",
)


def require_body(body: Optional[Mapping[str, Any]]) -> Mapping[str, Any]:
    """The request body, which must be a JSON object."""
    if body is None:
        raise BadRequestError("this endpoint requires a JSON object body")
    return body


def body_str(
    body: Mapping[str, Any], name: str, default: Optional[str] = None
) -> Optional[str]:
    value = body.get(name, default)
    if value is not None and not isinstance(value, str):
        raise BadRequestError(f"field {name!r} must be a string", field=name)
    return value


def body_int(
    body: Mapping[str, Any], name: str, default: Optional[int] = None
) -> Optional[int]:
    value = body.get(name, default)
    if value is not None and (isinstance(value, bool) or not isinstance(value, int)):
        raise BadRequestError(f"field {name!r} must be an integer", field=name)
    return value


def body_dict(
    body: Mapping[str, Any], name: str
) -> Dict[str, Any]:
    value = body.get(name, {})
    if not isinstance(value, dict):
        raise BadRequestError(f"field {name!r} must be a JSON object", field=name)
    return value


def check_fields(
    body: Mapping[str, Any], allowed: Sequence[str]
) -> None:
    """Reject unknown body fields, so engine knobs cannot bypass ``params``."""
    unknown = sorted(name for name in body if name not in allowed)
    if unknown:
        raise BadRequestError(
            f"unknown fields {unknown}; allowed: {sorted(allowed)}",
            fields=unknown,
        )


def validate_params(
    scenario_name: str, params: Mapping[str, Any]
) -> Dict[str, Any]:
    """Validate overrides against the scenario's parameter space.

    Failures become structured 422s: an unknown scenario names itself
    under ``parameter: "scenario"``; a bad override names the exact
    offending parameter — validated one name at a time so a multi-knob
    request still pins the blame precisely.
    """
    if not isinstance(params, Mapping):
        raise BadRequestError("params must be a JSON object")
    try:
        scenario = get_scenario(scenario_name)
    except ModelError as error:
        raise ValidationFailure(str(error), parameter="scenario") from error
    space = scenario.parameter_space()
    validated: Dict[str, Any] = {}
    for name, value in params.items():
        try:
            validated.update(space.validate({name: value}))
        except ModelError as error:
            raise ValidationFailure(str(error), parameter=name) from error
    return validated


def build_experiment(
    body: Mapping[str, Any], default_name: str
) -> Experiment:
    """A validated :class:`Experiment` from a simulate/sweep request body.

    ``params`` (one point) and ``grid``/``base`` (a sweep) are mutually
    exclusive.  A single-point request runs under ``seed_strategy:
    "shared"`` so its row records exactly the requested seed — the
    cache-key contract; sweeps default to per-variant streams like the
    experiment layer itself.
    """
    check_fields(body, EXPERIMENT_FIELDS)
    scenario = body_str(body, "scenario")
    if scenario is None:
        raise BadRequestError("field 'scenario' is required", field="scenario")
    if "params" in body and "grid" in body:
        raise BadRequestError(
            "pass either 'params' (one point) or 'grid' (a sweep), not both"
        )

    if "grid" in body:
        grid = body_dict(body, "grid")
        base = body_dict(body, "base")
        if not grid:
            raise BadRequestError("field 'grid' must name at least one axis")
        validate_params(scenario, base)
        for axis, values in grid.items():
            if isinstance(values, (str, bytes)) or not isinstance(values, list):
                raise BadRequestError(
                    f"grid axis {axis!r} must be a list of values", field=axis
                )
            for value in values:
                validate_params(scenario, {axis: value})
        try:
            variants = SweepSpec(scenario=scenario, grid=grid, base=base).expand()
        except ExperimentError as error:
            raise BadRequestError(str(error)) from error
        default_strategy = "per-variant"
    else:
        validated = validate_params(scenario, body_dict(body, "params"))
        variants = (VariantSpec(scenario=scenario, params=validated),)
        default_strategy = "shared"

    mode = body_str(body, "mode", "batch")
    assert mode is not None
    if mode not in SIMULATION_MODES:
        raise ValidationFailure(
            f"mode must be one of {SIMULATION_MODES}, got {mode!r}",
            parameter="mode",
        )
    paths_field = body.get("paths", ["simulate"])
    if not isinstance(paths_field, list) or not all(
        isinstance(path, str) for path in paths_field
    ):
        raise BadRequestError("field 'paths' must be a list of strings", field="paths")
    paths = tuple(paths_field)
    if not paths or any(path not in EXPERIMENT_PATHS for path in paths):
        raise ValidationFailure(
            f"paths must be a non-empty subset of {EXPERIMENT_PATHS}, got {paths!r}",
            parameter="paths",
        )
    strategy = body_str(body, "seed_strategy", default_strategy)
    assert strategy is not None
    if strategy not in SEED_STRATEGIES:
        raise ValidationFailure(
            f"seed_strategy must be one of {SEED_STRATEGIES}, got {strategy!r}",
            parameter="seed_strategy",
        )
    name = body_str(body, "name", default_name)
    assert name is not None
    n_receivers = body_int(body, "n_receivers", 500)
    seed = body_int(body, "seed", 0)
    assert n_receivers is not None and seed is not None

    try:
        return Experiment(
            name=name,
            variants=variants,
            n_receivers=n_receivers,
            seed=seed,
            mode=mode,
            paths=paths,
            task=body_str(body, "task"),
            seed_strategy=strategy,
        )
    except ExperimentError as error:
        raise BadRequestError(str(error)) from error


def run_cost(experiment: Experiment) -> int:
    """The receiver-round count an experiment will simulate.

    The inline-vs-async dispatch metric: analytic walks are free (always
    inline on their own), each simulated variant costs ``n_receivers``
    times its effective round count.
    """
    if "simulate" not in experiment.paths:
        return 0
    cost = 0
    for variant in experiment.variants:
        rounds = variant.params.get("rounds") or _ENGINE_DEFAULT_ROUNDS
        cost += experiment.n_receivers * int(rounds)
    return cost


def predicted_run_keys(run: VariantRun) -> List[CacheKey]:
    """The cache keys the rows of one work unit will carry, in row order.

    Mirrors what :func:`~repro.experiments.runner.run_variant` records:
    the realized ``rng_mode`` / ``rounds`` are the bound parameter values
    or the engine defaults (the service never sets them at the experiment
    level), and the task name is resolved against the built system the
    same way the runner resolves it.
    """
    variant = get_scenario(run.scenario).bind(**dict(run.params))
    task = variant.resolve_task(variant.system(), run.task).name
    point = variant_hash(run.scenario, run.params)
    keys: List[CacheKey] = []
    if "analyze" in run.paths:
        keys.append((point, None, None, "analytic", None, None, task))
    if "simulate" in run.paths:
        rng_mode = run.params.get("rng_mode") or _ENGINE_DEFAULT_RNG_MODE
        rounds = run.params.get("rounds") or run.rounds or _ENGINE_DEFAULT_ROUNDS
        keys.append(
            (point, run.seed, run.n_receivers, run.mode, rng_mode, int(rounds), task)
        )
    return keys


@dataclasses.dataclass(frozen=True)
class CachedRunOutcome:
    """What :func:`run_with_cache` produced, and where the rows came from."""

    resultset: ResultSet
    served: int
    computed: int

    def cache_summary(self) -> Dict[str, int]:
        return {"served": self.served, "computed": self.computed}


def run_with_cache(cache: ResultCache, experiment: Experiment) -> CachedRunOutcome:
    """Run an experiment, serving fully-cached variants without engine work.

    Per work unit: when every predicted row identity is cached, the rows
    are served from the cache (counting hits) and the variant never
    binds, simulates, or analyzes; otherwise the unit runs, its misses
    are counted, and its rows are stored under their recorded identity —
    first write wins, so a racing duplicate keeps the original bytes.
    """
    served = 0
    computed = 0
    payloads: List[Dict[str, Any]] = []
    for run in plan_runs(experiment):
        keys = predicted_run_keys(run)
        if keys and all(cache.peek(key) for key in keys):
            for key in keys:
                payload = cache.serve(key)
                assert payload is not None  # peeked under first-write-wins
                payloads.append(payload)
            served += len(keys)
        else:
            rows = run_variant(run)
            cache.note_misses(len(rows))
            computed += len(rows)
            for row in rows:
                payload = result_row_to_dict(row)
                cache.store(row_cache_key(payload), payload)
                payloads.append(payload)
    resultset = ResultSet(
        experiment=experiment.name,
        rows=[result_row_from_dict(payload) for payload in payloads],
        seed=experiment.seed,
    )
    return CachedRunOutcome(resultset=resultset, served=served, computed=computed)
