"""``/scenarios`` — registry listing, parameter-space description, validation."""

from __future__ import annotations

from typing import Any, Dict

from ..core.exceptions import ModelError
from ..systems.scenario import all_scenarios, get_scenario, variant_hash
from ..systems.parameters import variant_label
from .app import Request, Router
from .errors import NotFoundError
from .requests import require_body, validate_params
from .state import ServiceState

__all__ = ["router"]

router = Router()


@router.get("/scenarios")
def list_scenarios(state: ServiceState, request: Request) -> Dict[str, Any]:
    """Every registered scenario, with its unbound identity hash."""
    return {
        "scenarios": [
            {
                "name": name,
                "description": scenario.description,
                "variant_hash": variant_hash(name, {}),
            }
            for name, scenario in sorted(all_scenarios().items())
        ]
    }


@router.get("/scenarios/{name}")
def describe_scenario(state: ServiceState, request: Request) -> Dict[str, Any]:
    """One scenario's parameter space, parameter by parameter."""
    name = request.path_params["name"]
    try:
        scenario = get_scenario(name)
    except ModelError as error:
        raise NotFoundError(str(error), scenario=name) from error
    return {
        "name": name,
        "description": scenario.description,
        "parameters": list(scenario.parameter_space().describe()),
    }


@router.post("/scenarios/{name}/validate")
def validate_scenario_params(
    state: ServiceState, request: Request
) -> Dict[str, Any]:
    """Validate overrides without running anything.

    Returns the validated values, the canonical variant label, and the
    content hash the rows of this point would carry; failures are the
    same structured 422s the run endpoints produce.
    """
    name = request.path_params["name"]
    body = require_body(request.body)
    params = body.get("params", {})
    validated = validate_params(name, params)
    return {
        "scenario": name,
        "params": validated,
        "label": variant_label(name, validated),
        "variant_hash": variant_hash(name, validated),
    }
