"""``/health`` — liveness, version, and cache/job-store statistics."""

from __future__ import annotations

from typing import Any, Dict

from .. import __version__
from ..systems.scenario import available_scenarios
from .app import Request, Router
from .state import ServiceState

__all__ = ["router"]

router = Router()


@router.get("/health")
def health(state: ServiceState, request: Request) -> Dict[str, Any]:
    """Service liveness with the numbers an operator polls."""
    return {
        "status": "ok",
        "version": __version__,
        "scenarios": len(available_scenarios()),
        "inline_threshold": state.config.inline_threshold,
        "cache": state.cache.stats(),
        "jobs": state.jobs.stats(),
    }
