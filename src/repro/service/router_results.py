"""``/results`` — fetch, merge, import, and bit-exact reproduction.

Result rows are addressable two ways: by the job that computed them
(``/results/{job_id}``, read back from the job's append-only shard
checkpoint and reassembled canonically) or by pure content
(``/results/by-hash/{variant_hash}``, straight from the result cache).
``/results/reproduce`` closes the provenance loop over HTTP: it re-runs
a row from its recorded fields alone via
:func:`repro.experiments.results.reproduce_row` — which pins
``rng_mode="matrix"`` for archived rows predating the field, so rows
produced before the counter-stream default replay their original bits —
and reports whether the fresh metrics match the recorded ones modulo
wall-clock telemetry.
"""

from __future__ import annotations

from typing import Any, Dict

from ..experiments.results import (
    ExperimentError,
    ResultRow,
    ResultSet,
    WALL_CLOCK_METRICS,
    reproduce_row,
)
from ..experiments.runner import _simulation_metrics
from ..io.experiments_io import (
    result_row_from_dict,
    result_row_to_dict,
    resultset_from_dict,
    resultset_to_dict,
)
from .app import Request, Router
from .errors import BadRequestError, NotFoundError
from .requests import require_body
from .state import ServiceState

__all__ = ["router"]

router = Router()


def _strip_wall_clock(metrics: Dict[str, float]) -> Dict[str, float]:
    return {
        name: value
        for name, value in metrics.items()
        if name not in WALL_CLOCK_METRICS
    }


@router.get("/results/{job_id}")
def job_result(state: ServiceState, request: Request) -> Dict[str, Any]:
    """The merged, canonical result set of one completed job."""
    job_id = request.path_params["job_id"]
    resultset = state.load_job_result(job_id)
    return {"job_id": job_id, "resultset": resultset_to_dict(resultset)}


@router.get("/results/{job_id}/rows/{variant_hash}")
def job_row(state: ServiceState, request: Request) -> Dict[str, Any]:
    """One row of a completed job, addressed by content hash."""
    job_id = request.path_params["job_id"]
    variant_hash = request.path_params["variant_hash"]
    resultset = state.load_job_result(job_id)
    try:
        row = resultset.row_by_hash(variant_hash, mode=request.query.get("mode"))
    except ExperimentError as error:
        raise NotFoundError(str(error), variant_hash=variant_hash) from error
    return {"job_id": job_id, "row": result_row_to_dict(row)}


@router.get("/results/by-hash/{variant_hash}")
def rows_by_hash(state: ServiceState, request: Request) -> Dict[str, Any]:
    """Every cached row of one parameter point — content addressing."""
    variant_hash = request.path_params["variant_hash"]
    rows = state.cache.rows_by_hash(variant_hash)
    mode = request.query.get("mode")
    if mode is not None:
        rows = [row for row in rows if row.get("mode") == mode]
    if not rows:
        raise NotFoundError(
            f"no cached rows for variant hash {variant_hash!r}",
            variant_hash=variant_hash,
        )
    return {"variant_hash": variant_hash, "rows": rows}


@router.post("/results/merge")
def merge_resultsets(state: ServiceState, request: Request) -> Dict[str, Any]:
    """Reassemble shard/partial result-set payloads canonically."""
    body = require_body(request.body)
    payloads = body.get("resultsets")
    if not isinstance(payloads, list) or not payloads:
        raise BadRequestError(
            "field 'resultsets' must be a non-empty list of result-set objects",
            field="resultsets",
        )
    sets = [resultset_from_dict(payload) for payload in payloads]
    merged = ResultSet.merge(*sets)
    return {"resultset": resultset_to_dict(merged)}


@router.post("/results/import")
def import_resultset(state: ServiceState, request: Request) -> Dict[str, Any]:
    """Load an archived result set into the content cache.

    Parsing re-validates every row's recorded ``variant_hash`` against
    its parameters, so tampered archives are rejected; accepted rows
    become cache entries addressable by hash and eligible to serve
    future identical queries byte-for-byte.
    """
    body = require_body(request.body)
    payload = body.get("resultset")
    if not isinstance(payload, dict):
        raise BadRequestError(
            "field 'resultset' must be a result-set object", field="resultset"
        )
    resultset = resultset_from_dict(payload)
    rows = [result_row_to_dict(row) for row in resultset.rows]
    inserted = state.cache.store_rows(rows)
    return {
        "experiment": resultset.experiment,
        "rows": len(rows),
        "inserted": inserted,
    }


def _row_for_reproduce(state: ServiceState, body: Dict[str, Any]) -> ResultRow:
    """The row to re-run: given inline, or looked up in the cache by hash."""
    if "row" in body:
        if not isinstance(body["row"], dict):
            raise BadRequestError("field 'row' must be a row object", field="row")
        return result_row_from_dict(body["row"])
    variant_hash = body.get("variant_hash")
    if not isinstance(variant_hash, str):
        raise BadRequestError(
            "pass either 'row' (a row object) or 'variant_hash' (a cached row)"
        )
    mode = body.get("mode")
    candidates = [
        row
        for row in state.cache.rows_by_hash(variant_hash)
        if row.get("mode") != "analytic"
        and (mode is None or row.get("mode") == mode)
    ]
    if not candidates:
        raise NotFoundError(
            f"no cached simulated row for variant hash {variant_hash!r}",
            variant_hash=variant_hash,
        )
    if len(candidates) > 1:
        raise BadRequestError(
            f"variant hash {variant_hash!r} matches {len(candidates)} cached "
            "simulated rows; disambiguate with 'mode' or pass the row inline",
            variant_hash=variant_hash,
        )
    return result_row_from_dict(candidates[0])


@router.post("/results/reproduce")
def reproduce(state: ServiceState, request: Request) -> Dict[str, Any]:
    """Re-run one simulated row from provenance and compare bit-identity.

    Delegates to :func:`repro.experiments.results.reproduce_row`, which
    carries the legacy pin: a row without a recorded ``rng_mode`` (the
    pre-counter archives) replays under the matrix source it was drawn
    from.  ``match`` compares the fresh metrics to the recorded ones
    modulo :data:`WALL_CLOCK_METRICS`.
    """
    body = dict(require_body(request.body))
    row = _row_for_reproduce(state, body)
    result = reproduce_row(row)
    fresh = _strip_wall_clock(_simulation_metrics(result))
    recorded = _strip_wall_clock(dict(row.metrics))
    return {
        "variant_hash": row.variant_hash,
        "match": fresh == recorded,
        "rng_mode": result.rng_mode,
        "metrics": fresh,
        "recorded_metrics": recorded,
    }
