"""repro.service — simulation-as-a-service over the scenario registry.

A dependency-free WSGI layer (stdlib only, JSON bodies) exposing the
framework's analytic walks, simulations, and sweep machinery over HTTP,
with two load-bearing pieces underneath every router:

* a **content-hash result cache** (:mod:`repro.service.cache`): rows are
  provenance-complete and bit-identical across execution strategies, so
  a response is addressable by
  ``(variant_hash, seed, n_receivers, mode, rng_mode, rounds, task)``
  alone and a repeated query returns the exact bytes of the first
  computation, and
* an **append-only job ledger** (:mod:`repro.service.jobs`): async sweep
  jobs record every state transition as one JSONL event, execute through
  the ordinary checkpointing backend, and survive server crashes with
  the interruption visible in the stream rather than papered over.

Start a server with ``python -m repro.service serve --port N``; build an
in-process app for tests with :func:`create_app`.  See this package's
``README.md`` for the endpoint catalogue.
"""

from .app import Request, Router, ServiceApp, create_app
from .cache import CACHE_FILENAME, CacheKey, ResultCache, row_cache_key
from .errors import (
    ApiError,
    BadRequestError,
    MethodNotAllowedError,
    NotFoundError,
    ValidationFailure,
)
from .jobs import JOB_EVENTS_FILENAME, JobRecord, JobStore, JobWorker
from .requests import build_experiment, predicted_run_keys, run_cost, run_with_cache
from .state import ServiceConfig, ServiceState

__all__ = [
    "ApiError",
    "BadRequestError",
    "CACHE_FILENAME",
    "CacheKey",
    "JOB_EVENTS_FILENAME",
    "JobRecord",
    "JobStore",
    "JobWorker",
    "MethodNotAllowedError",
    "NotFoundError",
    "Request",
    "ResultCache",
    "Router",
    "ServiceApp",
    "ServiceConfig",
    "ServiceState",
    "ValidationFailure",
    "build_experiment",
    "create_app",
    "predicted_run_keys",
    "row_cache_key",
    "run_cost",
    "run_with_cache",
]
