"""``python -m repro.service serve`` — the stdlib WSGI server front door.

Serving uses :class:`wsgiref.simple_server.WSGIServer` with a threading
mix-in (one thread per connection; job execution stays on the service's
own worker thread), so the whole service runs on the standard library
alone.  ``--data-dir`` locates the durable state: the result-cache
stream and the job ledgers, both of which a restarted server replays.
"""

from __future__ import annotations

import argparse
import socketserver
from typing import List, Optional
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server

from .app import ServiceApp, create_app
from .state import ServiceConfig

__all__ = ["main", "build_server"]


class ThreadingWSGIServer(socketserver.ThreadingMixIn, WSGIServer):
    """One handler thread per connection; daemonic so shutdown is prompt."""

    daemon_threads = True


class _QuietHandler(WSGIRequestHandler):
    """Per-request logging off by default; the job ledger is the record."""

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass


def build_server(
    app: ServiceApp, host: str, port: int
) -> "WSGIServer":
    """A ready-to-serve threading WSGI server bound to ``host:port``.

    Split from :func:`main` so the quickstart example and the benchmark
    can run a real loopback server in-process (port 0 picks a free one).
    """
    return make_server(
        host,
        port,
        app,
        server_class=ThreadingWSGIServer,
        handler_class=_QuietHandler,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Simulation-as-a-service over the scenario registry.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    serve = subparsers.add_parser("serve", help="run the HTTP service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8750)
    serve.add_argument(
        "--data-dir",
        default="service-data",
        help="directory for the cache stream and job ledgers",
    )
    serve.add_argument(
        "--inline-threshold",
        type=int,
        default=100_000,
        help="receiver-round budget above which runs become async jobs",
    )
    args = parser.parse_args(argv)

    config = ServiceConfig(
        data_dir=args.data_dir, inline_threshold=args.inline_threshold
    )
    app = create_app(config)
    server = build_server(app, args.host, args.port)
    print(
        f"repro.service listening on http://{args.host}:{server.server_port} "
        f"(data: {args.data_dir})"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        app.state.close()
    return 0
