"""Content-hash result cache: the load-bearing middle layer of the service.

Every result row the engine produces is provenance-complete and
bit-identical across execution strategies (serial, chunked, sharded,
scheduled — the PR 5-9 contracts), so a response is addressable by
*content* alone: the cache key is

    ``(variant_hash, seed, n_receivers, mode, rng_mode, rounds, task)``

— the exact reproduction identity of :func:`repro.experiments.reproduce_row`
minus the fields that never change the bits (``batch_size``,
``chunk_workers``).  The resolved task name rides along because a task
is the one run input outside ``variant_hash`` (it selects *which* of the
scenario's security-critical tasks the population faces); every other
engine knob the service accepts travels through the scenario's
``ParameterSpace`` and is therefore already inside the hash.  A repeated
policy query therefore becomes an O(1)
lookup returning the **exact bytes of the first computation**: entries
are stored as their canonical serialized JSON string and parsed fresh on
every hit, so no caller can mutate the cached bytes, and the first store
wins — a racing duplicate computation never replaces what an earlier
client was served.

With a backing path the cache is durable: every store appends one line
to a ``service-cache.jsonl`` stream (:class:`repro.io.eventlog.EventLogWriter`,
the same append-only, torn-tail-tolerant discipline as the shard
checkpoints), and a restarted server warms itself by replaying the
stream.  The ``service-`` name prefix is registered in
:data:`repro.io.shards.TELEMETRY_PREFIXES`, so checkpoint loaders skip
service streams that share a directory with shard files.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..io.eventlog import EventLogWriter, read_events

__all__ = [
    "CACHE_FILENAME",
    "CacheKey",
    "ResultCache",
    "row_cache_key",
]

PathLike = Union[str, Path]

#: The backing stream's file name (``service-`` prefix: see module doc).
CACHE_FILENAME = "service-cache.jsonl"

#: ``(variant_hash, seed, n_receivers, mode, rng_mode, rounds, task)`` —
#: the content identity of one cached response.  Analytic rows use
#: ``(hash, None, None, "analytic", None, None, task)``.
CacheKey = Tuple[
    str,
    Optional[int],
    Optional[int],
    str,
    Optional[str],
    Optional[int],
    Optional[str],
]


def row_cache_key(row: Dict[str, Any]) -> CacheKey:
    """The cache key of one serialized result row (its recorded identity).

    Reads the *realized* provenance the run recorded — for simulated rows
    ``rng_mode`` / ``rounds`` / the resolved ``task`` name are always
    populated by the engine, so rows cached from a sweep and rows cached
    from an inline call agree on the key however the request spelled its
    overrides.
    """
    return (
        str(row["variant_hash"]),
        row.get("seed"),
        row.get("n_receivers"),
        str(row["mode"]),
        row.get("rng_mode"),
        row.get("rounds"),
        row.get("task"),
    )


def _normalize_key(raw: Any) -> Optional[CacheKey]:
    """A replayed JSON key (list form) back to the tuple form, or None."""
    if not isinstance(raw, (list, tuple)) or len(raw) != 7:
        return None
    hash_, seed, n_receivers, mode, rng_mode, rounds, task = raw
    if not isinstance(hash_, str) or not isinstance(mode, str):
        return None
    return (hash_, seed, n_receivers, mode, rng_mode, rounds, task)


class ResultCache:
    """Thread-safe, first-write-wins, optionally JSONL-backed result cache."""

    def __init__(self, path: Optional[PathLike] = None) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[CacheKey, str] = {}
        self._hits = 0
        self._misses = 0
        self._writer: Optional[EventLogWriter] = None
        if path is not None:
            for event in read_events(path):
                key = _normalize_key(event.get("key"))
                payload = event.get("payload")
                if key is not None and isinstance(payload, dict):
                    self._entries.setdefault(
                        key, json.dumps(payload, sort_keys=True)
                    )
            self._writer = EventLogWriter(path)

    # -- lookups -----------------------------------------------------------------

    def peek(self, key: CacheKey) -> bool:
        """Whether a key is cached — no hit/miss accounting."""
        with self._lock:
            return key in self._entries

    def serve(self, key: CacheKey) -> Optional[Dict[str, Any]]:
        """The cached payload for a key, counting a hit or a miss.

        A hit parses the stored canonical string fresh, so every caller
        gets an isolated object backed by the exact bytes first stored.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._hits += 1
        loaded = json.loads(entry)
        assert isinstance(loaded, dict)
        return loaded

    def rows_by_hash(self, variant_hash: str) -> List[Dict[str, Any]]:
        """Every cached row payload of one parameter point (no accounting).

        A provenance lookup, not a computation avoided — hit/miss
        counters are deliberately untouched.  Payloads parse fresh from
        the stored canonical strings, like :meth:`serve`.
        """
        with self._lock:
            entries = [
                entry
                for key, entry in self._entries.items()
                if key[0] == variant_hash
            ]
        rows: List[Dict[str, Any]] = []
        for entry in entries:
            loaded = json.loads(entry)
            assert isinstance(loaded, dict)
            rows.append(loaded)
        return rows

    def note_misses(self, count: int) -> None:
        """Account for responses computed because the cache lacked them."""
        if count > 0:
            with self._lock:
                self._misses += count

    # -- stores ------------------------------------------------------------------

    def store(self, key: CacheKey, payload: Dict[str, Any]) -> bool:
        """Cache one payload under a key; the first store wins.

        Returns whether this call inserted the entry.  Insertions are
        appended to the backing stream (when configured) under the lock,
        so the durable ledger and the in-memory view agree on which
        computation's bytes a key serves.
        """
        with self._lock:
            if key in self._entries:
                return False
            self._entries[key] = json.dumps(payload, sort_keys=True)
            if self._writer is not None:
                self._writer.append({"key": list(key), "payload": payload})
            return True

    def store_rows(self, rows: List[Dict[str, Any]]) -> int:
        """Cache every serialized result row under its recorded identity."""
        inserted = 0
        for row in rows:
            if self.store(row_cache_key(row), row):
                inserted += 1
        return inserted

    # -- lifecycle / stats -------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self._hits,
                "misses": self._misses,
            }

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
