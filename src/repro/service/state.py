"""Shared service state: configuration, cache, job store, job executor.

One :class:`ServiceState` backs every router: the content-keyed
:class:`~repro.service.cache.ResultCache` (persisted as a
``service-cache.jsonl`` stream inside the data directory), the
:class:`~repro.service.jobs.JobStore` ledger under ``data_dir/jobs/``,
and the :class:`~repro.service.jobs.JobWorker` that executes async
sweeps through the ordinary experiment machinery — a
:class:`~repro.experiments.backends.ShardBackend` writing append-only
shard checkpoints into the job's own directory, with every
:class:`~repro.experiments.backends.ShardProgress` observation forwarded
into the job's event stream.  A sweep whose rows are all cached is
assembled from the cache and written straight to the job checkpoint:
done, observable, and no engine work.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Any, Dict, List

from ..experiments.backends import ShardBackend, ShardProgress, shard_plans
from ..experiments.design import Experiment
from ..experiments.results import ResultSet
from ..experiments.runner import plan_runs
from ..io.experiments_io import result_row_from_dict, result_row_to_dict
from ..io.shards import ShardLogWriter, load_checkpoint, shard_filename
from .cache import CACHE_FILENAME, ResultCache
from .errors import BadRequestError
from .jobs import JobRecord, JobStore, JobWorker
from .requests import (
    CachedRunOutcome,
    build_experiment,
    predicted_run_keys,
    run_with_cache,
)

__all__ = ["ServiceConfig", "ServiceState"]


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """How one service instance runs.

    ``inline_threshold`` is the receiver-round budget (see
    :func:`repro.service.requests.run_cost`) under which a simulate/sweep
    request runs synchronously in the request; anything costlier becomes
    an async job.  ``persist_cache=False`` keeps the result cache purely
    in-memory (tests); ``threaded_worker=False`` queues jobs until
    :meth:`ServiceState.run_pending_jobs` drains them (tests again).
    """

    data_dir: str
    inline_threshold: int = 100_000
    persist_cache: bool = True
    threaded_worker: bool = True


class ServiceState:
    """The cache, job ledger, and worker shared by all routers."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        root = Path(config.data_dir)
        root.mkdir(parents=True, exist_ok=True)
        cache_path = root / CACHE_FILENAME if config.persist_cache else None
        self.cache = ResultCache(cache_path)
        self.jobs = JobStore(root / "jobs")
        self.worker = JobWorker(
            self.jobs, self._execute_job, threaded=config.threaded_worker
        )

    # -- async jobs --------------------------------------------------------------

    def submit_job(self, request: Dict[str, Any]) -> JobRecord:
        """Ledger a validated simulate/sweep request and queue it."""
        record = self.jobs.submit(request)
        self.worker.submit(record.job_id)
        return record

    def run_pending_jobs(self) -> int:
        """Drain queued jobs synchronously (only meaningful in test mode)."""
        return self.worker.run_pending()

    def _execute_job(self, job_id: str) -> Dict[str, Any]:
        """Run one ledgered sweep; the default :class:`JobWorker` executor.

        Fully-cached sweeps are assembled from the cache and appended to
        the job's checkpoint file — the job completes with zero engine
        work but its results stay addressable by job id like any other.
        Everything else runs through a single-shard checkpointing
        backend, so a retried or resubmitted job dedups against whatever
        its directory already committed.
        """
        record = self.jobs.get(job_id)
        experiment = build_experiment(record.request, default_name=job_id)
        job_dir = self.jobs.job_dir(job_id)

        runs = plan_runs(experiment)
        predicted = [predicted_run_keys(run) for run in runs]
        if predicted and all(
            self.cache.peek(key) for keys in predicted for key in keys
        ):
            payloads: List[Dict[str, Any]] = []
            for keys in predicted:
                for key in keys:
                    payload = self.cache.serve(key)
                    assert payload is not None
                    payloads.append(payload)
            rows = [result_row_from_dict(payload) for payload in payloads]
            plan = shard_plans(experiment, 1)[0]
            with ShardLogWriter(
                job_dir / shard_filename(0, 1), plan.header()
            ) as writer:
                writer.append(rows)
            self.jobs.mark_progress(
                job_id,
                {
                    "variants_done": len(runs),
                    "variants_total": len(runs),
                    "rows_committed": len(rows),
                    "rows_appended": 0,
                },
            )
            return {
                "experiment": experiment.name,
                "rows": len(rows),
                "from_cache": True,
            }

        def on_progress(progress: ShardProgress) -> None:
            self.jobs.mark_progress(job_id, dataclasses.asdict(progress))

        backend = ShardBackend(
            0, 1, checkpoint_dir=str(job_dir), on_progress=on_progress
        )
        resultset = backend.execute(experiment)
        payloads = [result_row_to_dict(row) for row in resultset.rows]
        self.cache.note_misses(len(payloads))
        self.cache.store_rows(payloads)
        return {
            "experiment": experiment.name,
            "rows": len(payloads),
            "from_cache": False,
        }

    # -- results -----------------------------------------------------------------

    def load_job_result(self, job_id: str) -> ResultSet:
        """The merged, canonical result set of one completed job."""
        record = self.jobs.get(job_id)
        if record.status != "done":
            raise BadRequestError(
                f"job {job_id!r} is {record.status!r}, not done",
                job=job_id,
                status=record.status,
            )
        entries = load_checkpoint(self.jobs.job_dir(job_id))
        rows = [
            row
            for _, header, shard_rows in entries
            if header is not None
            for row in shard_rows
        ]
        experiment = str(record.summary.get("experiment", job_id))
        seed = record.request.get("seed", 0)
        return ResultSet.merge(
            ResultSet(experiment=experiment, rows=rows, seed=seed)
        )

    # -- inline execution (routers call through for shared accounting) -----------

    def run_inline(self, experiment: Experiment) -> CachedRunOutcome:
        return run_with_cache(self.cache, experiment)

    # -- lifecycle ---------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {"cache": self.cache.stats(), "jobs": self.jobs.stats()}

    def close(self) -> None:
        self.worker.close()
        self.jobs.close()
        self.cache.close()
