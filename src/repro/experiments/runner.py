"""Experiment work units: resolved variant plans and their execution.

Each variant of an :class:`~repro.experiments.design.Experiment` becomes
one picklable :class:`VariantRun` work unit; :func:`run_variant` re-binds
the scenario from the registry inside the executing process (the registry
is populated by import side effects, so worker processes see the same
scenarios) and returns the result rows.  Every unit carries its own
derived seed and its variant's declaration index, so any execution
strategy — inline, a process pool, or one shard per host (see
:mod:`repro.experiments.backends`) — produces identical rows in a
reconstructible order.  :func:`execute` remains as the legacy entry
point, now a thin wrapper over the backend layer.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Tuple

from ..core.analysis import analyze_system
from ..simulation.metrics import SimulationResult
from ..systems.scenario import get_scenario
from .design import Experiment
from .results import WALL_CLOCK_METRICS, ResultRow, ResultSet

if TYPE_CHECKING:  # deferred: backends imports this module
    from .backends import ExecutionBackend

__all__ = [
    "VariantRun",
    "plan_runs",
    "run_variant",
    "execute",
    "WALL_CLOCK_METRICS",  # canonical home: repro.experiments.results
]


@dataclasses.dataclass(frozen=True)
class VariantRun:
    """One variant's fully-resolved, picklable execution plan."""

    experiment: str
    scenario: str
    label: str
    params: Mapping[str, Any]
    seed: int
    n_receivers: int
    mode: str
    paths: Tuple[str, ...]
    task: Optional[str] = None
    batch_size: Optional[int] = None
    rounds: Optional[int] = None
    recovery_rate: Optional[float] = None
    dismiss_weight: Optional[float] = None
    heed_weight: Optional[float] = None
    trace: Optional[bool] = None
    variant_index: int = 0


def plan_runs(experiment: Experiment) -> List[VariantRun]:
    """Resolve every variant of an experiment into a work unit."""
    return [
        VariantRun(
            experiment=experiment.name,
            scenario=variant.scenario,
            label=variant.resolved_label(),
            params=dict(variant.params),
            seed=experiment.variant_seed(index),
            n_receivers=experiment.n_receivers,
            mode=experiment.mode,
            paths=experiment.paths,
            task=experiment.task,
            batch_size=experiment.batch_size,
            rounds=experiment.rounds,
            recovery_rate=experiment.recovery_rate,
            dismiss_weight=experiment.dismiss_weight,
            heed_weight=experiment.heed_weight,
            trace=experiment.trace,
            variant_index=index,
        )
        for index, variant in enumerate(experiment.variants)
    ]


def _simulation_metrics(result: SimulationResult) -> Dict[str, float]:
    """The flat metric dictionary recorded for a simulated row.

    Multi-round runs additionally record each round's headline rates under
    ``round<k>:`` keys, so a result row carries the full decay curve.
    Runs with tracing enabled carry the per-stage funnel under
    ``funnel:<checkpoint>:`` keys (survival and conditional-failure rates
    per pipeline checkpoint).  Wall-clock telemetry rides along under
    ``perf:`` keys (elapsed seconds, receiver-round throughput, chunks
    processed) — machine-dependent, so provenance rather than identity.
    """
    metrics = result.summary()
    metrics["failure_rate"] = result.failure_rate()
    if result.elapsed_seconds is not None:
        metrics["perf:elapsed_seconds"] = result.elapsed_seconds
        throughput = result.throughput()
        if throughput is not None:
            metrics["perf:receiver_rounds_per_second"] = throughput
    if result.chunks:
        metrics["perf:chunks"] = float(result.chunks)
    for stage, fraction in result.stage_failure_fractions().items():
        metrics[f"stage_failure:{stage.value}"] = fraction
    if result.funnel is not None:
        metrics.update(result.funnel.summary())
    if result.rounds > 1:
        for round_tally in result.round_tallies:
            prefix = f"round{round_tally.round_index}"
            metrics[f"{prefix}:protection_rate"] = round_tally.protection_rate()
            metrics[f"{prefix}:heed_rate"] = round_tally.heed_rate()
            metrics[f"{prefix}:notice_rate"] = round_tally.notice_rate()
    return metrics


def run_variant(run: VariantRun) -> List[ResultRow]:
    """Execute one variant (in this process) and return its result rows."""
    variant = get_scenario(run.scenario).bind(**dict(run.params))
    rows: List[ResultRow] = []

    if "analyze" in run.paths:
        system = variant.system()
        analysis = analyze_system(system)
        task_name = variant.resolve_task(system, run.task).name
        task_analysis = analysis.task_analyses.get(task_name)
        metrics: Dict[str, float] = {
            "mean_success_probability": analysis.mean_success_probability(),
        }
        if task_analysis is not None:
            metrics["success_probability"] = task_analysis.success_probability
            metrics["total_risk"] = task_analysis.failures.total_risk()
        rows.append(
            ResultRow(
                experiment=run.experiment,
                scenario=run.scenario,
                variant=run.label,
                params=run.params,
                mode="analytic",
                metrics=metrics,
                task=task_name,
                variant_index=run.variant_index,
            )
        )

    if "simulate" in run.paths:
        overrides: Dict[str, Any] = {}
        for name in ("batch_size", "rounds", "recovery_rate", "dismiss_weight",
                     "heed_weight", "trace"):
            value = getattr(run, name)
            if value is not None:
                overrides[name] = value
        result = variant.simulate(
            run.n_receivers, seed=run.seed, task=run.task, mode=run.mode, **overrides
        )
        rows.append(
            ResultRow(
                experiment=run.experiment,
                scenario=run.scenario,
                variant=run.label,
                params=run.params,
                mode=run.mode,
                metrics=_simulation_metrics(result),
                seed=run.seed,
                n_receivers=run.n_receivers,
                batch_size=result.batch_size,
                task=result.task_name,
                population=result.population_name,
                calibration_label=result.calibration_label,
                rounds=result.rounds,
                recovery_rate=result.recovery_rate,
                dismiss_weight=result.dismiss_weight,
                heed_weight=result.heed_weight,
                rng_mode=result.rng_mode,
                chunk_workers=result.chunk_workers,
                variant_index=run.variant_index,
            )
        )
    return rows


def execute(
    experiment: Experiment,
    max_workers: Optional[int] = None,
    backend: Optional["ExecutionBackend"] = None,
) -> ResultSet:
    """Run an experiment's variants through an execution backend.

    Legacy entry point kept for callers of the pre-backend API:
    ``max_workers`` maps onto
    :class:`~repro.experiments.backends.ProcessBackend` (with a
    deprecation warning); prefer :meth:`Experiment.run(backend=...)`.
    """
    from .backends import resolve_backend  # deferred: backends imports this module

    return resolve_backend(backend=backend, max_workers=max_workers).execute(experiment)
