"""Unified experiment results with full provenance.

A :class:`ResultRow` is one (variant, mode) cell of an experiment: the
flat metrics the run produced plus everything needed to reproduce it —
scenario name, validated parameter overrides, seed, execution mode,
batch size, and the resolved task.  :func:`reproduce_row` proves the
provenance is sufficient by re-running any simulated row from its fields
alone.

A :class:`ResultSet` collects the rows of one experiment and is the
object the benchmarks, examples, and the viz layer consume: filtering,
per-metric comparison, Markdown rendering (via :mod:`repro.io.tabular`),
JSON export (via :mod:`repro.io.experiments_io`), and the mitigation
post-step — :meth:`ResultSet.recommendations` runs the
:mod:`repro.mitigations` ranking per variant instead of only per bare
system.

Row identity is **content-based**, not positional: every row carries the
:func:`repro.systems.scenario.variant_hash` of its (scenario, params)
point, and :meth:`ResultSet.merge` reassembles shard / partial result
sets by that identity — validating provenance (same experiment) and
rejecting clashes (the same row appearing in more than one set, as
overlapping shard plans produce) — into the exact row order of a serial
run.
"""

from __future__ import annotations

import dataclasses
import sys
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..core.exceptions import ReproError
from ..io.tabular import render_markdown_table
from ..mitigations.recommendations import SystemRecommendations, recommend_for_system
from ..simulation.metrics import SimulationResult
from ..systems.scenario import get_scenario
from ..systems.scenario import variant_hash as compute_variant_hash

__all__ = [
    "ResultRow",
    "ResultSet",
    "reproduce_row",
    "WALL_CLOCK_METRICS",
    "TELEMETRY_ROW_FIELDS",
]

#: Row metrics that record machine time rather than simulated outcomes —
#: the one per-row datum legitimately different between two bit-identical
#: runs.  Determinism checks (shard == serial, batch == reference,
#: scheduler-merged == serial) compare rows modulo these names — use
#: :meth:`ResultSet.canonical_dict` rather than re-deriving the filter;
#: ``perf:chunks`` is NOT listed because the chunk count is a pure
#: function of (n_receivers, batch_size).
WALL_CLOCK_METRICS = ("perf:elapsed_seconds", "perf:receiver_rounds_per_second")

#: :class:`ResultRow` provenance fields recorded as execution telemetry
#: only — how a run was executed, never what it computed —  and therefore
#: deliberately not consumed by :func:`reproduce_row`.  Machine-checked by
#: ``repro.devtools`` rule REP003: every engine knob recorded on a row
#: must either be consumed by :func:`reproduce_row` (reproduction
#: identity) or be declared here (telemetry), never neither.
TELEMETRY_ROW_FIELDS = ("chunk_workers",)


class ExperimentError(ReproError):
    """Raised when an experiment spec or result set is used inconsistently."""


@dataclasses.dataclass(frozen=True)
class ResultRow:
    """One (variant, mode) result of an experiment, with provenance.

    ``mode`` is ``"analytic"`` for the failure-identification walk, or the
    engine mode (``"batch"`` / ``"reference"``) for simulated rows.  For
    simulated rows the (scenario, params, task, n_receivers, seed, mode,
    batch_size, rounds, recovery_rate, dismiss_weight, heed_weight,
    rng_mode) tuple reproduces the run exactly — see
    :func:`reproduce_row`; ``chunk_workers`` is recorded as telemetry but
    never changes the bits.  ``rounds`` /
    ``recovery_rate`` / ``dismiss_weight`` / ``heed_weight`` record the
    *realized* engine settings (1 / 0.0 / 1.0 / 1.0 for single-shot,
    delivery-only runs); the per-round decay curve of a multi-round run
    lives in the ``round<k>:`` metrics and the per-stage funnel in the
    ``funnel:<checkpoint>:`` metrics.
    """

    experiment: str
    scenario: str
    variant: str
    params: Mapping[str, Any]
    mode: str
    metrics: Mapping[str, float]
    seed: Optional[int] = None
    n_receivers: Optional[int] = None
    batch_size: Optional[int] = None
    task: Optional[str] = None
    population: Optional[str] = None
    calibration_label: Optional[str] = None
    rounds: Optional[int] = None
    recovery_rate: Optional[float] = None
    dismiss_weight: Optional[float] = None
    heed_weight: Optional[float] = None
    rng_mode: Optional[str] = None
    chunk_workers: Optional[int] = None
    variant_index: Optional[int] = None

    @property
    def simulated(self) -> bool:
        return self.mode != "analytic"

    @property
    def variant_hash(self) -> str:
        """Content hash identifying this row's (scenario, params) point.

        Computed from the row's own provenance, so it stays valid however
        the row was reassembled (merged shards, loaded checkpoints); the
        JSON form records it for integrity checking on load.
        """
        return compute_variant_hash(self.scenario, self.params)

    def row_key(self) -> Tuple[str, str, str]:
        """This row's identity within its experiment.

        The (variant label, variant hash, mode) triple: labels are unique
        per experiment, the hash pins the parameter point behind the
        label, and the mode separates the analytic row from the simulated
        one.  Shard checkpointing, resume, and :meth:`ResultSet.merge`
        all dedup on this key — never on list position.
        """
        return (self.variant, self.variant_hash, self.mode)

    def metric(self, name: str) -> float:
        if name not in self.metrics:
            raise ExperimentError(
                f"row {self.variant!r} has no metric {name!r}; "
                f"known: {sorted(self.metrics)}"
            )
        return self.metrics[name]

    def table_row(self) -> Dict[str, Any]:
        """The row flattened for tabular rendering: variant, params, metrics."""
        row: Dict[str, Any] = {"variant": self.variant, "mode": self.mode}
        row.update(self.params)
        row.update(self.metrics)
        return row


def reproduce_row(row: ResultRow) -> SimulationResult:
    """Re-run one simulated row from its recorded provenance alone.

    The returned result is bit-identical to the original run: the variant
    is re-bound from the registry with the recorded parameters and the
    engine re-seeded with the recorded (seed, mode, batch_size).  Row
    identity is entirely field-based — the row's ``variant_hash`` names
    the parameter point and the recorded seed the stream — so rows from
    merged, sharded, or resumed :class:`ResultSet`\\ s reproduce exactly,
    whatever position they ended up at.
    """
    if not row.simulated:
        raise ExperimentError(f"row {row.variant!r} is analytic; nothing to re-simulate")
    if row.seed is None or row.n_receivers is None:
        raise ExperimentError(f"row {row.variant!r} lacks seed/n_receivers provenance")
    variant = get_scenario(row.scenario).bind(**dict(row.params))
    overrides: Dict[str, Any] = {}
    # chunk_workers is deliberately omitted: it is parallelism telemetry,
    # not stream identity — the serial re-run reproduces the same bits.
    for name in (
        "batch_size",
        "rounds",
        "recovery_rate",
        "dismiss_weight",
        "heed_weight",
        "rng_mode",
    ):
        value = getattr(row, name)
        if value is not None:
            overrides[name] = value
    # Rows persisted before rng_mode existed were drawn by the matrix
    # source (the only source at the time, and the default until the
    # counter flip) — pin it so re-running them under today's counter
    # default still replays the recorded bits.
    overrides.setdefault("rng_mode", "matrix")
    return variant.simulate(
        row.n_receivers, seed=row.seed, task=row.task, mode=row.mode, **overrides
    )


def _canonical_row_order(row: ResultRow) -> Tuple[int, int]:
    """Serial-run row order: variant declaration order, analytic row first.

    Rows without a recorded ``variant_index`` (legacy payloads) all get
    the same key, so they keep their relative order at the end —
    ``sorted`` is stable.
    """
    if row.variant_index is None:
        return (sys.maxsize, 0)
    return (row.variant_index, 0 if row.mode == "analytic" else 1)


@dataclasses.dataclass
class ResultSet:
    """Every row one experiment produced, in variant order.

    ``seed`` records the experiment seed the rows were produced under
    (``None`` for hand-built or legacy sets): per-variant row seeds
    derive from it, so two sets can only be merged when it agrees.
    """

    experiment: str
    rows: List[ResultRow] = dataclasses.field(default_factory=list)
    seed: Optional[int] = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[ResultRow]:
        return iter(self.rows)

    # -- merging -----------------------------------------------------------------

    @classmethod
    def merge(cls, *sets: "ResultSet") -> "ResultSet":
        """Reassemble shard / partial result sets into one canonical set.

        Validates provenance — every set must come from the same
        experiment: same name, same experiment seed (a renamed-in-place
        experiment re-run under a different seed must not merge with the
        old shards), and one ``n_receivers`` across the simulated rows —
        and rejects clashes: the same row identity
        (:meth:`ResultRow.row_key`) appearing more than once, which is
        what overlapping shard plans or a double-merged set produce.
        Rows are reordered canonically by their recorded
        ``variant_index`` (analytic before simulated within a variant),
        so merging a sharded sweep yields exactly the serial run's
        :class:`ResultSet` — bit-identical through
        :func:`repro.io.resultset_to_dict`.
        """
        if not sets:
            raise ExperimentError("merge needs at least one result set")
        names = sorted({resultset.experiment for resultset in sets})
        if len(names) > 1:
            raise ExperimentError(
                f"cannot merge result sets from different experiments: {names}"
            )
        seeds = sorted(
            {resultset.seed for resultset in sets if resultset.seed is not None}
        )
        if len(seeds) > 1:
            raise ExperimentError(
                f"cannot merge result sets produced under different experiment "
                f"seeds: {seeds}"
            )
        seen: Dict[Tuple[str, str, str], ResultRow] = {}
        for resultset in sets:
            for row in resultset.rows:
                key = row.row_key()
                if key in seen:
                    raise ExperimentError(
                        f"overlapping result sets: row {row.variant!r} "
                        f"(mode {row.mode!r}, hash {row.variant_hash}) appears "
                        "more than once — shard plans must be disjoint"
                    )
                seen[key] = row
        sizes = sorted(
            {row.n_receivers for row in seen.values() if row.n_receivers is not None}
        )
        if len(sizes) > 1:
            raise ExperimentError(
                f"cannot merge rows simulated at different n_receivers: {sizes}"
            )
        return cls(
            experiment=names[0],
            rows=sorted(seen.values(), key=_canonical_row_order),
            seed=seeds[0] if seeds else None,
        )

    # -- selection ---------------------------------------------------------------

    def labels(self) -> List[str]:
        """Variant labels in first-seen order."""
        seen: Dict[str, None] = {}
        for row in self.rows:
            seen.setdefault(row.variant, None)
        return list(seen)

    def simulated(self) -> "ResultSet":
        return ResultSet(
            self.experiment, [row for row in self.rows if row.simulated], self.seed
        )

    def analytic(self) -> "ResultSet":
        return ResultSet(
            self.experiment, [row for row in self.rows if not row.simulated], self.seed
        )

    def row(self, variant: str, mode: Optional[str] = None) -> ResultRow:
        """The unique row for a variant (and mode, when both paths ran)."""
        matches = [
            row
            for row in self.rows
            if row.variant == variant and (mode is None or row.mode == mode)
        ]
        if not matches:
            raise ExperimentError(
                f"no row for variant {variant!r}"
                + (f" in mode {mode!r}" if mode else "")
                + f"; known variants: {self.labels()}"
            )
        if len(matches) > 1:
            raise ExperimentError(
                f"variant {variant!r} has {len(matches)} rows; pass mode="
                f"{sorted({row.mode for row in matches})}"
            )
        return matches[0]

    def row_by_hash(self, variant_hash: str, mode: Optional[str] = None) -> ResultRow:
        """The unique row whose parameter-identity hash matches.

        The hash-keyed sibling of :meth:`row`: identity comes from the
        (scenario, params) content hash rather than the display label, so
        callers holding provenance from another host's shard file can
        address the row without knowing how it was labelled.
        """
        matches = [
            row
            for row in self.rows
            if row.variant_hash == variant_hash
            and (mode is None or row.mode == mode)
        ]
        if not matches:
            raise ExperimentError(
                f"no row with variant hash {variant_hash!r}"
                + (f" in mode {mode!r}" if mode else "")
                + f"; known hashes: {sorted({row.variant_hash for row in self.rows})}"
            )
        if len(matches) > 1:
            raise ExperimentError(
                f"variant hash {variant_hash!r} matches {len(matches)} rows; "
                f"pass mode={sorted({row.mode for row in matches})}"
            )
        return matches[0]

    def reproduce(self, key: str, mode: Optional[str] = None) -> SimulationResult:
        """Re-run one simulated row, looked up by variant label or hash.

        Identity-based on :attr:`ResultRow.variant_hash` (falling back to
        the label), so merged / sharded / resumed sets reproduce
        correctly however their rows were reassembled.
        """
        matches = [
            row
            for row in self.simulated().rows
            if key in (row.variant, row.variant_hash)
            and (mode is None or row.mode == mode)
        ]
        if not matches:
            raise ExperimentError(
                f"no simulated row labelled or hashed {key!r}; "
                f"known variants: {self.labels()}"
            )
        if len(matches) > 1:
            raise ExperimentError(
                f"{key!r} matches {len(matches)} simulated rows; pass mode="
                f"{sorted({row.mode for row in matches})}"
            )
        return reproduce_row(matches[0])

    def metric_by_variant(self, metric: str, mode: Optional[str] = None) -> Dict[str, float]:
        """One metric across variants (simulated rows unless ``mode`` given)."""
        if mode is not None:
            rows = [row for row in self.rows if row.mode == mode]
        else:
            rows = self.simulated().rows or self.rows
        return {row.variant: row.metric(metric) for row in rows}

    def best(
        self, metric: str, mode: Optional[str] = None, minimize: bool = False
    ) -> ResultRow:
        """The row optimizing one metric."""
        subset = (
            [row for row in self.rows if row.mode == mode] if mode else self.rows
        )
        candidates = [row for row in subset if metric in row.metrics]
        if not candidates:
            raise ExperimentError(f"no rows carry metric {metric!r}")
        chooser = min if minimize else max
        return chooser(candidates, key=lambda row: row.metrics[metric])

    # -- rendering / export ------------------------------------------------------

    def table(self, metrics: Optional[Sequence[str]] = None) -> List[Dict[str, Any]]:
        """Rows flattened for :mod:`repro.io.tabular` rendering."""
        flattened = [row.table_row() for row in self.rows]
        if metrics is None:
            return flattened
        keep = ["variant", "mode", *metrics]
        return [
            {key: row[key] for key in keep if key in row} for row in flattened
        ]

    def to_markdown(self, metrics: Optional[Sequence[str]] = None) -> str:
        """Render the result set as a Markdown comparison table."""
        return render_markdown_table(self.table(metrics))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (see :mod:`repro.io.experiments_io`)."""
        from ..io.experiments_io import resultset_to_dict

        return resultset_to_dict(self)

    def canonical_dict(self) -> Dict[str, Any]:
        """The JSON form modulo wall-clock telemetry — the bit-identity view.

        Two runs of the same experiment are *bit-identical* when their
        canonical dicts are equal: everything in :meth:`to_dict` except
        the :data:`WALL_CLOCK_METRICS` row metrics, which record machine
        time and legitimately differ between otherwise identical runs.
        Every equivalence assertion (merged shards == serial, scheduler
        fleet == serial, resumed == uninterrupted) compares this form.
        """
        payload = self.to_dict()
        for row in payload["rows"]:
            row["metrics"] = {
                name: value
                for name, value in row["metrics"].items()
                if name not in WALL_CLOCK_METRICS
            }
        return payload

    def save(self, path: str) -> None:
        """Write the result set (with provenance) as JSON."""
        from ..io.experiments_io import save_resultset

        save_resultset(self, path)

    # -- mitigation post-step ----------------------------------------------------

    def recommendations(
        self,
        domain: Optional[str] = None,
        labels: Optional[Sequence[str]] = None,
    ) -> Dict[str, SystemRecommendations]:
        """Mitigation ranking per variant (rather than per bare system).

        Re-binds each variant's system from its provenance and runs the
        :func:`repro.mitigations.recommend_for_system` pipeline; returns
        one :class:`SystemRecommendations` per variant label.  ``labels``
        restricts the (analysis-heavy) ranking to a subset of variants.
        """
        if labels is not None:
            unknown = sorted(set(labels) - set(self.labels()))
            if unknown:
                raise ExperimentError(
                    f"unknown variants {unknown}; known: {self.labels()}"
                )
        recommendations: Dict[str, SystemRecommendations] = {}
        for row in self.rows:
            if row.variant in recommendations:
                continue
            if labels is not None and row.variant not in labels:
                continue
            variant = get_scenario(row.scenario).bind(**dict(row.params))
            recommendations[row.variant] = recommend_for_system(
                variant.system(), domain=domain
            )
        return recommendations
