"""Unified experiment results with full provenance.

A :class:`ResultRow` is one (variant, mode) cell of an experiment: the
flat metrics the run produced plus everything needed to reproduce it —
scenario name, validated parameter overrides, seed, execution mode,
batch size, and the resolved task.  :func:`reproduce_row` proves the
provenance is sufficient by re-running any simulated row from its fields
alone.

A :class:`ResultSet` collects the rows of one experiment and is the
object the benchmarks, examples, and the viz layer consume: filtering,
per-metric comparison, Markdown rendering (via :mod:`repro.io.tabular`),
JSON export (via :mod:`repro.io.experiments_io`), and the mitigation
post-step — :meth:`ResultSet.recommendations` runs the
:mod:`repro.mitigations` ranking per variant instead of only per bare
system.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence

from ..core.exceptions import ReproError
from ..io.tabular import render_markdown_table
from ..mitigations.recommendations import SystemRecommendations, recommend_for_system
from ..simulation.metrics import SimulationResult
from ..systems.scenario import get_scenario

__all__ = ["ResultRow", "ResultSet", "reproduce_row"]


class ExperimentError(ReproError):
    """Raised when an experiment spec or result set is used inconsistently."""


@dataclasses.dataclass(frozen=True)
class ResultRow:
    """One (variant, mode) result of an experiment, with provenance.

    ``mode`` is ``"analytic"`` for the failure-identification walk, or the
    engine mode (``"batch"`` / ``"reference"``) for simulated rows.  For
    simulated rows the (scenario, params, task, n_receivers, seed, mode,
    batch_size, rounds, recovery_rate, dismiss_weight, heed_weight) tuple
    reproduces the run exactly — see :func:`reproduce_row`.  ``rounds`` /
    ``recovery_rate`` / ``dismiss_weight`` / ``heed_weight`` record the
    *realized* engine settings (1 / 0.0 / 1.0 / 1.0 for single-shot,
    delivery-only runs); the per-round decay curve of a multi-round run
    lives in the ``round<k>:`` metrics and the per-stage funnel in the
    ``funnel:<checkpoint>:`` metrics.
    """

    experiment: str
    scenario: str
    variant: str
    params: Mapping[str, Any]
    mode: str
    metrics: Mapping[str, float]
    seed: Optional[int] = None
    n_receivers: Optional[int] = None
    batch_size: Optional[int] = None
    task: Optional[str] = None
    population: Optional[str] = None
    calibration_label: Optional[str] = None
    rounds: Optional[int] = None
    recovery_rate: Optional[float] = None
    dismiss_weight: Optional[float] = None
    heed_weight: Optional[float] = None

    @property
    def simulated(self) -> bool:
        return self.mode != "analytic"

    def metric(self, name: str) -> float:
        if name not in self.metrics:
            raise ExperimentError(
                f"row {self.variant!r} has no metric {name!r}; "
                f"known: {sorted(self.metrics)}"
            )
        return self.metrics[name]

    def table_row(self) -> Dict[str, Any]:
        """The row flattened for tabular rendering: variant, params, metrics."""
        row: Dict[str, Any] = {"variant": self.variant, "mode": self.mode}
        row.update(self.params)
        row.update(self.metrics)
        return row


def reproduce_row(row: ResultRow) -> SimulationResult:
    """Re-run one simulated row from its recorded provenance alone.

    The returned result is bit-identical to the original run: the variant
    is re-bound from the registry with the recorded parameters and the
    engine re-seeded with the recorded (seed, mode, batch_size).
    """
    if not row.simulated:
        raise ExperimentError(f"row {row.variant!r} is analytic; nothing to re-simulate")
    if row.seed is None or row.n_receivers is None:
        raise ExperimentError(f"row {row.variant!r} lacks seed/n_receivers provenance")
    variant = get_scenario(row.scenario).bind(**dict(row.params))
    overrides: Dict[str, Any] = {}
    for name in ("batch_size", "rounds", "recovery_rate", "dismiss_weight", "heed_weight"):
        value = getattr(row, name)
        if value is not None:
            overrides[name] = value
    return variant.simulate(
        row.n_receivers, seed=row.seed, task=row.task, mode=row.mode, **overrides
    )


@dataclasses.dataclass
class ResultSet:
    """Every row one experiment produced, in variant order."""

    experiment: str
    rows: List[ResultRow] = dataclasses.field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[ResultRow]:
        return iter(self.rows)

    # -- selection ---------------------------------------------------------------

    def labels(self) -> List[str]:
        """Variant labels in first-seen order."""
        seen: Dict[str, None] = {}
        for row in self.rows:
            seen.setdefault(row.variant, None)
        return list(seen)

    def simulated(self) -> "ResultSet":
        return ResultSet(self.experiment, [row for row in self.rows if row.simulated])

    def analytic(self) -> "ResultSet":
        return ResultSet(self.experiment, [row for row in self.rows if not row.simulated])

    def row(self, variant: str, mode: Optional[str] = None) -> ResultRow:
        """The unique row for a variant (and mode, when both paths ran)."""
        matches = [
            row
            for row in self.rows
            if row.variant == variant and (mode is None or row.mode == mode)
        ]
        if not matches:
            raise ExperimentError(
                f"no row for variant {variant!r}"
                + (f" in mode {mode!r}" if mode else "")
                + f"; known variants: {self.labels()}"
            )
        if len(matches) > 1:
            raise ExperimentError(
                f"variant {variant!r} has {len(matches)} rows; pass mode="
                f"{sorted({row.mode for row in matches})}"
            )
        return matches[0]

    def metric_by_variant(self, metric: str, mode: Optional[str] = None) -> Dict[str, float]:
        """One metric across variants (simulated rows unless ``mode`` given)."""
        if mode is not None:
            rows = [row for row in self.rows if row.mode == mode]
        else:
            rows = self.simulated().rows or self.rows
        return {row.variant: row.metric(metric) for row in rows}

    def best(
        self, metric: str, mode: Optional[str] = None, minimize: bool = False
    ) -> ResultRow:
        """The row optimizing one metric."""
        subset = (
            [row for row in self.rows if row.mode == mode] if mode else self.rows
        )
        candidates = [row for row in subset if metric in row.metrics]
        if not candidates:
            raise ExperimentError(f"no rows carry metric {metric!r}")
        chooser = min if minimize else max
        return chooser(candidates, key=lambda row: row.metrics[metric])

    # -- rendering / export ------------------------------------------------------

    def table(self, metrics: Optional[Sequence[str]] = None) -> List[Dict[str, Any]]:
        """Rows flattened for :mod:`repro.io.tabular` rendering."""
        flattened = [row.table_row() for row in self.rows]
        if metrics is None:
            return flattened
        keep = ["variant", "mode", *metrics]
        return [
            {key: row[key] for key in keep if key in row} for row in flattened
        ]

    def to_markdown(self, metrics: Optional[Sequence[str]] = None) -> str:
        """Render the result set as a Markdown comparison table."""
        return render_markdown_table(self.table(metrics))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible form (see :mod:`repro.io.experiments_io`)."""
        from ..io.experiments_io import resultset_to_dict

        return resultset_to_dict(self)

    def save(self, path: str) -> None:
        """Write the result set (with provenance) as JSON."""
        from ..io.experiments_io import save_resultset

        save_resultset(self, path)

    # -- mitigation post-step ----------------------------------------------------

    def recommendations(
        self,
        domain: Optional[str] = None,
        labels: Optional[Sequence[str]] = None,
    ) -> Dict[str, SystemRecommendations]:
        """Mitigation ranking per variant (rather than per bare system).

        Re-binds each variant's system from its provenance and runs the
        :func:`repro.mitigations.recommend_for_system` pipeline; returns
        one :class:`SystemRecommendations` per variant label.  ``labels``
        restricts the (analysis-heavy) ranking to a subset of variants.
        """
        if labels is not None:
            unknown = sorted(set(labels) - set(self.labels()))
            if unknown:
                raise ExperimentError(
                    f"unknown variants {unknown}; known: {self.labels()}"
                )
        recommendations: Dict[str, SystemRecommendations] = {}
        for row in self.rows:
            if row.variant in recommendations:
                continue
            if labels is not None and row.variant not in labels:
                continue
            variant = get_scenario(row.scenario).bind(**dict(row.params))
            recommendations[row.variant] = recommend_for_system(
                variant.system(), domain=domain
            )
        return recommendations
