"""Declarative experiment layer over the scenario registry and batch engine.

The public API for *comparing* human-in-the-loop configurations — the
activity the paper's case studies exist for.  Instead of hand-wiring one
simulator call per configuration, describe the comparison declaratively:

>>> from repro.experiments import Experiment, SweepSpec
>>> sweep = SweepSpec(
...     scenario="passwords",
...     grid={"distinct_accounts": [4, 8, 16], "single_sign_on": [False, True]},
... )
>>> experiment = Experiment.from_sweep(
...     "password-burden", sweep, n_receivers=1000, seed=7, task="recall-passwords"
... )
>>> results = experiment.run()            # SerialBackend is the default
>>> print(results.to_markdown(["protection_rate", "capability_failure_rate"]))

Execution strategy is pluggable (:mod:`repro.experiments.backends`):
``run(backend=ProcessBackend(max_workers=8))`` fans out over local
processes, and a grid can be split across hosts with one
:class:`ShardBackend` invocation per shard —

>>> host_a = experiment.run(backend=ShardBackend(0, 2, checkpoint_dir="ckpt"))
>>> host_b = experiment.run(backend=ShardBackend(1, 2, checkpoint_dir="ckpt"))
>>> merged = ResultSet.merge(host_a, host_b)   # == the serial run, bit for bit

— with append-only JSONL checkpoints (:mod:`repro.io.shards`) that
``experiment.resume("ckpt")`` completes after an interruption without
recomputing finished rows.

Layering:

* :mod:`repro.experiments.design` — :class:`VariantSpec` /
  :class:`SweepSpec` / :class:`Experiment` specifications,
* :mod:`repro.experiments.runner` — picklable :class:`VariantRun` work
  units with per-variant seeded RNG streams,
* :mod:`repro.experiments.backends` — the :class:`ExecutionBackend`
  protocol and the serial / process-pool / shard strategies,
* :mod:`repro.experiments.results` — the unified :class:`ResultSet` of
  :class:`ResultRow` provenance records (content-hashed row identity,
  :meth:`ResultSet.merge`), exported via :mod:`repro.io`, rendered via
  :mod:`repro.io.tabular`, and feeding the :mod:`repro.mitigations`
  ranking per variant.
"""

from .backends import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ShardBackend,
    ShardPlan,
    ShardProgress,
    resolve_backend,
    resume_experiment,
    shard_plans,
)
from .design import (
    EXPERIMENT_PATHS,
    SEED_STRATEGIES,
    Experiment,
    SweepSpec,
    VariantSpec,
)
from .presets import password_case_study_variants
from .results import ExperimentError, ResultRow, ResultSet, reproduce_row
from .runner import (
    WALL_CLOCK_METRICS,
    VariantRun,
    execute,
    plan_runs,
    run_variant,
)

__all__ = [
    "password_case_study_variants",
    "Experiment",
    "SweepSpec",
    "VariantSpec",
    "EXPERIMENT_PATHS",
    "SEED_STRATEGIES",
    "ResultRow",
    "ResultSet",
    "ExperimentError",
    "reproduce_row",
    "VariantRun",
    "plan_runs",
    "run_variant",
    "execute",
    "WALL_CLOCK_METRICS",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessBackend",
    "ShardBackend",
    "ShardPlan",
    "ShardProgress",
    "shard_plans",
    "resolve_backend",
    "resume_experiment",
]
