"""Declarative experiment layer over the scenario registry and batch engine.

The public API for *comparing* human-in-the-loop configurations — the
activity the paper's case studies exist for.  Instead of hand-wiring one
simulator call per configuration, describe the comparison declaratively:

>>> from repro.experiments import Experiment, SweepSpec
>>> sweep = SweepSpec(
...     scenario="passwords",
...     grid={"distinct_accounts": [4, 8, 16], "single_sign_on": [False, True]},
... )
>>> experiment = Experiment.from_sweep(
...     "password-burden", sweep, n_receivers=1000, seed=7, task="recall-passwords"
... )
>>> results = experiment.run()            # or .run(max_workers=8) for big grids
>>> print(results.to_markdown(["protection_rate", "capability_failure_rate"]))

Layering:

* :mod:`repro.experiments.design` — :class:`VariantSpec` /
  :class:`SweepSpec` / :class:`Experiment` specifications,
* :mod:`repro.experiments.runner` — serial or process-parallel execution
  with per-variant seeded RNG streams,
* :mod:`repro.experiments.results` — the unified :class:`ResultSet` of
  :class:`ResultRow` provenance records, exported via :mod:`repro.io`,
  rendered via :mod:`repro.io.tabular`, and feeding the
  :mod:`repro.mitigations` ranking per variant.
"""

from .design import (
    EXPERIMENT_PATHS,
    SEED_STRATEGIES,
    Experiment,
    SweepSpec,
    VariantSpec,
)
from .presets import password_case_study_variants
from .results import ExperimentError, ResultRow, ResultSet, reproduce_row
from .runner import VariantRun, execute, plan_runs, run_variant

__all__ = [
    "password_case_study_variants",
    "Experiment",
    "SweepSpec",
    "VariantSpec",
    "EXPERIMENT_PATHS",
    "SEED_STRATEGIES",
    "ResultRow",
    "ResultSet",
    "ExperimentError",
    "reproduce_row",
    "VariantRun",
    "plan_runs",
    "run_variant",
    "execute",
]
