"""Canonical experiment presets for the paper's case studies.

The benchmark and example sweeps consume these helpers instead of
re-declaring variant lists, so the case-study comparisons stay in
lockstep with the canonical definitions in :mod:`repro.systems`.
"""

from __future__ import annotations

from typing import Tuple

from ..systems import passwords
from .design import VariantSpec

__all__ = ["password_case_study_variants"]


def password_case_study_variants() -> Tuple[VariantSpec, ...]:
    """The Section-3.2 policy variants (baseline, no-expiry, training,
    SSO, vault) as experiment variant specs."""
    return tuple(
        VariantSpec("passwords", params, label=label)
        for label, params in passwords.case_study_variant_params().items()
    )
