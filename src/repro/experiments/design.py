"""Declarative experiment specifications: variants, sweep grids, experiments.

This is the layer ROADMAP.md asked for: instead of hand-wiring each
comparison (one simulator call per password-policy variant, per warning
activeness, ...), an :class:`Experiment` names a registered scenario, the
parameter points to visit, and how to run them — and produces a
:class:`~repro.experiments.results.ResultSet` with full provenance.

* A :class:`VariantSpec` is one parameter point of one scenario.
* A :class:`SweepSpec` expands a parameter grid (Cartesian product, in
  declaration order) into variants, with optional fixed ``base``
  overrides applied to every point.
* An :class:`Experiment` runs each variant through the analytic walk
  and/or the simulation engine.  Each variant gets its own seeded RNG
  stream (``seed_strategy="per-variant"``, derived deterministically from
  the experiment seed via :class:`numpy.random.SeedSequence`) or shares
  the experiment seed (``"shared"``, i.e. common random numbers — the
  right choice when comparing variants pairwise).  *How* the variants
  execute is a separate, pluggable concern: ``run(backend=...)`` accepts
  any :class:`~repro.experiments.backends.ExecutionBackend` (serial, a
  local process pool, or one shard per host — see
  :mod:`repro.experiments.backends`), and :meth:`Experiment.resume`
  completes an interrupted run from its checkpoint directory.
"""

from __future__ import annotations

import collections
import dataclasses
import itertools
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..simulation.engine import SIMULATION_MODES
from ..systems.parameters import format_params, variant_label
from ..systems.scenario import get_scenario

if TYPE_CHECKING:  # deferred: backends imports this module
    from .backends import ExecutionBackend
from .results import ExperimentError, ResultSet

__all__ = ["VariantSpec", "SweepSpec", "Experiment", "EXPERIMENT_PATHS", "SEED_STRATEGIES"]

#: The framework readings an experiment may run per variant.
EXPERIMENT_PATHS = ("analyze", "simulate")

#: How per-variant seeds derive from the experiment seed.
SEED_STRATEGIES = ("per-variant", "shared")


@dataclasses.dataclass(frozen=True)
class VariantSpec:
    """One parameter point of one registered scenario."""

    scenario: str
    params: Mapping[str, Any] = dataclasses.field(default_factory=dict)
    label: Optional[str] = None

    def resolved_label(self) -> str:
        return self.label if self.label is not None else variant_label(
            self.scenario, self.params
        )


@dataclasses.dataclass(frozen=True)
class SweepSpec:
    """A declarative parameter grid over one scenario.

    ``grid`` maps parameter names to the values each axis visits; ``base``
    holds fixed overrides applied to every grid point.  Expansion is the
    Cartesian product with the *last* axis varying fastest, matching
    nested-loop reading order.
    """

    scenario: str
    grid: Mapping[str, Sequence[Any]]
    base: Mapping[str, Any] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.grid:
            raise ExperimentError("sweep grid must name at least one parameter")
        for name, values in self.grid.items():
            if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
                raise ExperimentError(
                    f"grid axis {name!r} must be a sequence of values, got {values!r}"
                )
            if len(values) == 0:
                raise ExperimentError(f"grid axis {name!r} has no values")
        overlap = set(self.grid) & set(self.base)
        if overlap:
            raise ExperimentError(
                f"parameters {sorted(overlap)} appear in both grid and base"
            )
        # Validate names and values against the scenario's parameter space
        # eagerly, so a bad spec fails at construction, not mid-run.
        space = get_scenario(self.scenario).parameter_space()
        space.validate(dict(self.base))
        for name, values in self.grid.items():
            for value in values:
                space.validate({name: value})

    @property
    def size(self) -> int:
        product = 1
        for values in self.grid.values():
            product *= len(values)
        return product

    def expand(self) -> Tuple[VariantSpec, ...]:
        """Every grid point as a :class:`VariantSpec`, labelled by its axes."""
        axes = list(self.grid)
        variants = []
        for point in itertools.product(*(self.grid[axis] for axis in axes)):
            swept = dict(zip(axes, point))
            label = format_params(swept)
            variants.append(
                VariantSpec(
                    scenario=self.scenario,
                    params={**dict(self.base), **swept},
                    label=label,
                )
            )
        return tuple(variants)


@dataclasses.dataclass(frozen=True)
class Experiment:
    """A named, declarative experiment over scenario variants.

    Parameters
    ----------
    name:
        Experiment name (recorded on every result row).
    variants:
        The parameter points to run (see :meth:`from_sweep` for grids).
    n_receivers / seed / mode / batch_size:
        Simulation settings, applied to every variant.
    rounds / recovery_rate / dismiss_weight / heed_weight / trace:
        Engine settings applied to every variant (``None`` keeps each
        variant's own bound value, or the engine default).  The weights
        couple habituation accrual to realized outcomes (see
        :func:`repro.simulation.habituation.advance_exposures`); ``trace``
        toggles the per-stage funnel tallies.  To *sweep* any of them,
        put them on a grid axis instead — they are common scenario
        parameters.
    paths:
        Which framework readings to run per variant: ``("simulate",)``
        (default), ``("analyze",)``, or both.
    task:
        Task name (or unique prefix) to study; default — each variant's
        default task.
    seed_strategy:
        ``"per-variant"`` — independent seeded streams derived from
        ``seed``; ``"shared"`` — every variant runs on the experiment
        seed (common random numbers).
    """

    name: str
    variants: Tuple[VariantSpec, ...]
    n_receivers: int = 500
    seed: int = 0
    mode: str = "batch"
    paths: Tuple[str, ...] = ("simulate",)
    task: Optional[str] = None
    batch_size: Optional[int] = None
    seed_strategy: str = "per-variant"
    rounds: Optional[int] = None
    recovery_rate: Optional[float] = None
    dismiss_weight: Optional[float] = None
    heed_weight: Optional[float] = None
    trace: Optional[bool] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "variants", tuple(self.variants))
        if not self.name:
            raise ExperimentError("experiment name must be non-empty")
        if not self.variants:
            raise ExperimentError("experiment needs at least one variant")
        if self.n_receivers <= 0:
            raise ExperimentError("n_receivers must be positive")
        if self.seed < 0:
            raise ExperimentError("seed must be non-negative")
        if self.mode not in SIMULATION_MODES:
            raise ExperimentError(
                f"mode must be one of {SIMULATION_MODES}, got {self.mode!r}"
            )
        if not self.paths or any(path not in EXPERIMENT_PATHS for path in self.paths):
            raise ExperimentError(
                f"paths must be a non-empty subset of {EXPERIMENT_PATHS}, got {self.paths!r}"
            )
        if self.seed_strategy not in SEED_STRATEGIES:
            raise ExperimentError(
                f"seed_strategy must be one of {SEED_STRATEGIES}, got {self.seed_strategy!r}"
            )
        if self.rounds is not None and self.rounds < 1:
            raise ExperimentError("rounds must be >= 1")
        if self.recovery_rate is not None and not 0.0 <= self.recovery_rate <= 1.0:
            raise ExperimentError("recovery_rate must be in [0, 1]")
        for name in ("dismiss_weight", "heed_weight"):
            value = getattr(self, name)
            if value is not None and value < 0.0:
                raise ExperimentError(f"{name} must be non-negative")
        # An experiment-level engine setting would silently override the
        # same knob bound or swept per variant, leaving rows whose params
        # contradict the realized run — reject the collision eagerly.
        for name in ("rounds", "recovery_rate", "dismiss_weight", "heed_weight", "trace"):
            if getattr(self, name) is None:
                continue
            clashing = sorted(
                variant.resolved_label()
                for variant in self.variants
                if name in variant.params
            )
            if clashing:
                raise ExperimentError(
                    f"{name} is set on the experiment and bound by variants "
                    f"{clashing}; set it in one place only"
                )
        counts = collections.Counter(
            variant.resolved_label() for variant in self.variants
        )
        duplicates = sorted(label for label, count in counts.items() if count > 1)
        if duplicates:
            raise ExperimentError(f"duplicate variant labels: {duplicates}")

    @classmethod
    def from_sweep(cls, name: str, sweep: SweepSpec, **settings: Any) -> "Experiment":
        """An experiment over every point of a sweep grid."""
        return cls(name=name, variants=sweep.expand(), **settings)

    def variant_seed(self, index: int) -> int:
        """The seed of the ``index``-th variant under the seed strategy."""
        if self.seed_strategy == "shared":
            return self.seed
        # REP001 exemplar: per-variant streams derive from an explicit
        # SeedSequence over (experiment seed, variant declaration index),
        # so seeds never depend on execution order or ambient state.
        return int(np.random.SeedSequence([self.seed, index]).generate_state(1)[0])

    def run(
        self,
        backend: Optional["ExecutionBackend"] = None,
        max_workers: Optional[int] = None,
    ) -> ResultSet:
        """Run every variant and collect a :class:`ResultSet`.

        ``backend`` selects the execution strategy — any
        :class:`~repro.experiments.backends.ExecutionBackend`:
        :class:`~repro.experiments.backends.SerialBackend` (the default),
        :class:`~repro.experiments.backends.ProcessBackend` for a local
        pool, or :class:`~repro.experiments.backends.ShardBackend` to run
        one deterministic shard of the grid per invocation.  Results are
        bit-identical across backends (each variant's stream derives from
        the experiment seed and the variant index, never from execution
        order); shard results reassemble via :meth:`ResultSet.merge`.
        ``max_workers=`` is the deprecated pre-backend shim for
        ``backend=ProcessBackend(max_workers=N)``.
        """
        from .backends import resolve_backend  # deferred: backends imports this module

        return resolve_backend(backend=backend, max_workers=max_workers).execute(self)

    def resume(self, checkpoint_dir: str) -> ResultSet:
        """Complete an interrupted (or partially-sharded) run from checkpoints.

        Reads every JSONL shard file in ``checkpoint_dir``, skips rows
        already completed, runs only what is missing (persisting the
        recomputed rows append-only alongside the shards), and returns
        the full :class:`ResultSet` — bit-identical to a serial run that
        was never interrupted.
        """
        from .backends import resume_experiment  # deferred, as above

        return resume_experiment(self, checkpoint_dir)
