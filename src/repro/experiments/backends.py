"""Pluggable execution backends for the experiments API.

``Experiment.run()`` historically hard-wired a single-machine
:class:`concurrent.futures.ProcessPoolExecutor` behind ``max_workers=``.
This module separates *what to run* (the experiment, resolved into
:class:`~repro.experiments.runner.VariantRun` work units) from *how to
run it* — any object satisfying the :class:`ExecutionBackend` protocol:

* :class:`SerialBackend` — every variant inline, in declaration order
  (the default, and the executable specification the others must match).
* :class:`ProcessBackend` — the former ``max_workers`` pool, now one
  strategy among several; ``max_workers=`` on :meth:`Experiment.run`
  survives as a deprecated shim mapped onto it.
* :class:`ShardBackend` — one deterministic shard of the grid per
  invocation, for splitting a sweep across hosts.  The partition strides
  over variant indices, and per-variant seeds derive from the experiment
  seed and the variant index (never from execution order), so the union
  of all shards is **bit-identical** to the serial run — reassembled via
  :meth:`ResultSet.merge`.  With a ``checkpoint_dir``, completed rows
  persist append-only as JSONL shard files (:mod:`repro.io.shards`) and
  are skipped on re-invocation.

:func:`resume_experiment` (surfaced as :meth:`Experiment.resume`) closes
the loop: it loads every shard file in a checkpoint directory, validates
the headers against the experiment, runs only the rows that are missing,
and returns the full canonical :class:`ResultSet` — identical to an
uninterrupted serial run.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import os
import warnings
from pathlib import Path
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from ..io.shards import (
    RESUME_FILENAME,
    ShardLogWriter,
    load_checkpoint,
    shard_filename,
)
from ..systems.scenario import variant_hash as compute_variant_hash
from .design import Experiment
from .results import ExperimentError, ResultRow, ResultSet
from .runner import VariantRun, plan_runs, run_variant

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ProcessBackend",
    "ShardBackend",
    "ShardPlan",
    "ShardProgress",
    "shard_plans",
    "resolve_backend",
    "resume_experiment",
]


@runtime_checkable
class ExecutionBackend(Protocol):
    """The protocol every execution strategy satisfies.

    A backend turns an :class:`Experiment` into a :class:`ResultSet`.
    Implementations must be *result-transparent*: whatever subset of the
    experiment they execute, every row they produce must be bit-identical
    to the corresponding row of a :class:`SerialBackend` run (per-variant
    seeds are derived from the experiment seed and the variant index, so
    this falls out of using :func:`~repro.experiments.runner.plan_runs`).
    """

    def execute(self, experiment: Experiment) -> ResultSet: ...


@dataclasses.dataclass(frozen=True)
class SerialBackend:
    """Run every variant inline, in declaration order."""

    def execute(self, experiment: Experiment) -> ResultSet:
        rows = [row for run in plan_runs(experiment) for row in run_variant(run)]
        return ResultSet(experiment=experiment.name, rows=rows, seed=experiment.seed)


@dataclasses.dataclass(frozen=True)
class ProcessBackend:
    """Fan variants out over a local :class:`ProcessPoolExecutor`.

    ``max_workers`` of ``None`` uses the machine's core count; the pool
    is always bounded by the variant count, and a pool of one (or a
    single-variant experiment) degrades to the serial path.  Rows are
    identical to :class:`SerialBackend` because each work unit carries
    its own derived seed.
    """

    max_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_workers is not None and self.max_workers < 1:
            raise ExperimentError("max_workers must be >= 1")

    def execute(self, experiment: Experiment) -> ResultSet:
        runs = plan_runs(experiment)
        workers = min(self.max_workers or os.cpu_count() or 1, len(runs))
        if workers <= 1 or len(runs) <= 1:
            return SerialBackend().execute(experiment)
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            row_lists = list(pool.map(run_variant, runs))
        return ResultSet(
            experiment=experiment.name,
            rows=[row for rows in row_lists for row in rows],
            seed=experiment.seed,
        )


@dataclasses.dataclass(frozen=True)
class ShardPlan:
    """One shard's deterministic slice of an experiment's work units."""

    experiment: str
    seed: int
    shard_index: int
    shard_count: int
    n_variants: int
    runs: Tuple[VariantRun, ...]

    def header(self) -> Dict[str, Any]:
        """The provenance header written into this shard's JSONL file."""
        return {
            "experiment": self.experiment,
            "seed": self.seed,
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
            "n_variants": self.n_variants,
        }

    def expected_row_keys(self) -> List[Tuple[str, str, str]]:
        """Every row identity this shard will produce, in emission order."""
        return [key for run in self.runs for key in _expected_row_keys(run)]


def shard_plans(experiment: Experiment, shard_count: int) -> List[ShardPlan]:
    """Deterministically partition an experiment across ``shard_count`` shards.

    Shard ``k`` takes variant indices ``k, k + shard_count, ...`` — a
    strided partition, so shard sizes differ by at most one and every
    work unit keeps the seed it would have under a serial run.
    """
    if shard_count < 1:
        raise ExperimentError(f"shard_count must be >= 1, got {shard_count}")
    runs = plan_runs(experiment)
    return [
        ShardPlan(
            experiment=experiment.name,
            seed=experiment.seed,
            shard_index=index,
            shard_count=shard_count,
            n_variants=len(runs),
            runs=tuple(runs[index::shard_count]),
        )
        for index in range(shard_count)
    ]


def _expected_row_keys(run: VariantRun) -> List[Tuple[str, str, str]]:
    """The row identities one work unit produces, in emission order."""
    point_hash = compute_variant_hash(run.scenario, run.params)
    keys: List[Tuple[str, str, str]] = []
    if "analyze" in run.paths:
        keys.append((run.label, point_hash, "analytic"))
    if "simulate" in run.paths:
        keys.append((run.label, point_hash, run.mode))
    return keys


@dataclasses.dataclass(frozen=True)
class ShardProgress:
    """One progress observation of a checkpointed run, per work unit.

    Emitted through the ``on_progress`` hook of :class:`ShardBackend`
    (and :func:`resume_experiment`) once before the first work unit and
    again after each one completes.  ``rows_committed`` counts every row
    of this invocation's slice known to be durable (checkpoint-served
    plus freshly appended) — the monotone signal cluster workers forward
    as their heartbeat; ``rows_appended`` counts only what *this*
    invocation wrote, which is what fault-injection row budgets meter.
    """

    variants_done: int
    variants_total: int
    rows_committed: int
    rows_appended: int


def _run_with_checkpoint(
    runs: Sequence[VariantRun],
    completed: Dict[Tuple[str, str, str], ResultRow],
    checkpoint_path: Optional[Path],
    header: Mapping[str, Any],
    on_progress: Optional[Any] = None,
) -> List[ResultRow]:
    """Execute work units, skipping rows already in ``completed``.

    Finished variants are served straight from the checkpoint; a variant
    with any row missing is re-run, and only the rows the checkpoint
    lacks are appended (so a run torn between a variant's analytic and
    simulated appends never duplicates the surviving row).  ``completed``
    is updated in place.  The shard log is held open across the whole
    run (:class:`~repro.io.shards.ShardLogWriter`), so the torn-tail
    recovery scan happens once per invocation and each append is
    O(rows written) — a scheduler retry costs O(rows), not O(rows²).
    ``on_progress`` (if given) receives a :class:`ShardProgress` before
    the first work unit and after each one.
    """
    rows: List[ResultRow] = []
    appended = 0
    done = 0

    def notify() -> None:
        if on_progress is not None:
            on_progress(
                ShardProgress(
                    variants_done=done,
                    variants_total=len(runs),
                    rows_committed=len(rows),
                    rows_appended=appended,
                )
            )

    writer = (
        ShardLogWriter(checkpoint_path, header)
        if checkpoint_path is not None
        else None
    )
    try:
        notify()
        for run in runs:
            keys = _expected_row_keys(run)
            if all(key in completed for key in keys):
                rows.extend(completed[key] for key in keys)
            else:
                produced = run_variant(run)
                fresh = [row for row in produced if row.row_key() not in completed]
                if writer is not None and fresh:
                    writer.append(fresh)
                    appended += len(fresh)
                rows.extend(completed.get(row.row_key(), row) for row in produced)
                completed.update({row.row_key(): row for row in fresh})
            done += 1
            notify()
    finally:
        if writer is not None:
            writer.close()
    return rows


def _validate_header(
    header: Mapping[str, Any], experiment: Experiment, path: Path
) -> None:
    """Reject a shard file recorded for a different experiment definition."""
    expected = {
        "experiment": experiment.name,
        "seed": experiment.seed,
        "n_variants": len(experiment.variants),
    }
    mismatched = {
        name: (header.get(name), value)
        for name, value in expected.items()
        if header.get(name) != value
    }
    if mismatched:
        details = ", ".join(
            f"{name}: file has {found!r}, experiment has {wanted!r}"
            for name, (found, wanted) in sorted(mismatched.items())
        )
        raise ExperimentError(
            f"shard file {str(path)!r} belongs to a different experiment ({details})"
        )


def _load_completed(
    entries: Sequence[Tuple[Path, Optional[Mapping[str, Any]], Sequence[ResultRow]]],
    experiment: Experiment,
) -> Dict[Tuple[str, str, str], ResultRow]:
    """Index checkpointed rows by identity, rejecting clashes across files."""
    completed: Dict[Tuple[str, str, str], ResultRow] = {}
    origin: Dict[Tuple[str, str, str], Path] = {}
    for path, header, rows in entries:
        if header is None:
            continue  # torn first write — the file holds nothing committed
        _validate_header(header, experiment, path)
        for row in rows:
            key = row.row_key()
            if key in completed:
                raise ExperimentError(
                    f"checkpoint clash: row {row.variant!r} (mode {row.mode!r}) "
                    f"appears in both {str(origin[key])!r} and {str(path)!r}"
                )
            completed[key] = row
            origin[key] = path
    return completed


@dataclasses.dataclass(frozen=True)
class ShardBackend:
    """Run one deterministic shard of the sweep — one invocation per host.

    ``shard_index`` / ``shard_count`` select the slice (see
    :func:`shard_plans`); the returned :class:`ResultSet` holds only this
    shard's rows, ready for :meth:`ResultSet.merge` with its siblings.
    With a ``checkpoint_dir``, rows persist append-only to this shard's
    JSONL file as each variant completes, and a re-invocation (after a
    crash, or a scheduler retry) skips everything already on disk —
    consulting *every* file in the directory, so rows another invocation
    already recovered (e.g. :meth:`Experiment.resume` writing to
    ``resume.jsonl``) are never recomputed or duplicated.

    ``on_progress`` (excluded from backend identity; not picklable
    machinery — cluster workers construct it locally) observes a
    :class:`ShardProgress` after each work unit: the heartbeat hook
    :mod:`repro.cluster` workers report liveness through.
    """

    shard_index: int
    shard_count: int
    checkpoint_dir: Optional[str] = None
    on_progress: Optional[Any] = dataclasses.field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.shard_count < 1:
            raise ExperimentError(f"shard_count must be >= 1, got {self.shard_count}")
        if not 0 <= self.shard_index < self.shard_count:
            raise ExperimentError(
                f"shard_index must be in [0, {self.shard_count}), got {self.shard_index}"
            )

    def plan(self, experiment: Experiment) -> ShardPlan:
        """This shard's slice of the experiment's work units."""
        return shard_plans(experiment, self.shard_count)[self.shard_index]

    def execute(self, experiment: Experiment) -> ResultSet:
        plan = self.plan(experiment)
        checkpoint_path: Optional[Path] = None
        completed: Dict[Tuple[str, str, str], ResultRow] = {}
        if self.checkpoint_dir is not None:
            directory = Path(self.checkpoint_dir)
            directory.mkdir(parents=True, exist_ok=True)
            checkpoint_path = directory / shard_filename(
                self.shard_index, self.shard_count
            )
            completed = _load_completed(load_checkpoint(directory), experiment)
        rows = _run_with_checkpoint(
            plan.runs, completed, checkpoint_path, plan.header(),
            on_progress=self.on_progress,
        )
        return ResultSet(experiment=experiment.name, rows=rows, seed=experiment.seed)


def resume_experiment(experiment: Experiment, checkpoint_dir: str) -> ResultSet:
    """Complete an interrupted or partially-sharded run from its checkpoints.

    Loads every shard file in ``checkpoint_dir`` (validating each header
    against the experiment and rejecting row clashes across files), runs
    only the variants with rows still missing — appending what it
    computes to ``resume.jsonl`` in the same append-only format — and
    returns the full canonical :class:`ResultSet`, bit-identical to an
    uninterrupted serial run.
    """
    directory = Path(checkpoint_dir)
    if not directory.is_dir():
        raise ExperimentError(
            f"checkpoint directory {str(directory)!r} does not exist"
        )
    runs = plan_runs(experiment)
    completed = _load_completed(load_checkpoint(directory), experiment)
    resume_header = {
        "experiment": experiment.name,
        "seed": experiment.seed,
        "shard_index": None,
        "shard_count": None,
        "n_variants": len(runs),
    }
    rows = _run_with_checkpoint(
        runs, completed, directory / RESUME_FILENAME, resume_header
    )
    return ResultSet(experiment=experiment.name, rows=rows, seed=experiment.seed)


def resolve_backend(
    backend: Optional[ExecutionBackend] = None,
    max_workers: Optional[int] = None,
) -> ExecutionBackend:
    """The backend an :meth:`Experiment.run` call asked for.

    ``max_workers=`` is the pre-backend spelling: it maps onto
    :class:`ProcessBackend` (``None``/``1`` stay serial, preserving the
    historical semantics) with a :class:`DeprecationWarning`.  A bare
    integer ``backend`` is a positional caller of the old
    ``run(max_workers)`` signature and is routed through the same shim.
    Passing both a backend and ``max_workers`` is a contradiction and
    raises.
    """
    if backend is not None and max_workers is not None:
        raise ExperimentError(
            "pass either backend= or the deprecated max_workers=, not both"
        )
    if isinstance(backend, int) and not isinstance(backend, bool):
        backend, max_workers = None, backend
    if max_workers is not None:
        warnings.warn(
            "max_workers= is deprecated; pass backend=ProcessBackend(max_workers=N) "
            "instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return ProcessBackend(max_workers=max_workers) if max_workers > 1 else SerialBackend()
    if backend is None:
        return SerialBackend()
    # runtime_checkable protocols only check attribute presence, so a
    # backend *class* (an easy typo for an instance) would slip through
    # and die later with an opaque TypeError.
    if isinstance(backend, type) or not isinstance(backend, ExecutionBackend):
        raise ExperimentError(
            f"backend {backend!r} does not satisfy the ExecutionBackend protocol "
            "(pass an instance with an execute(experiment) method)"
        )
    return backend
