#!/usr/bin/env python3
"""Simulation-as-a-service: submit, stream, fetch, and hit the cache.

Everything the other examples do by importing the engine, this one does
over HTTP against an in-process :mod:`repro.service` server (stdlib
WSGI, port 0 picks a free loopback port):

1. start the server with its real threaded job worker,
2. validate a password-policy grid (``/scenarios/.../validate``),
3. submit the sweep detached (``/sweep`` with ``detach``) and poll the
   job's append-only event stream while the worker runs it,
4. fetch the merged canonical result set by job id and one row by its
   content hash (``/results/by-hash/{variant_hash}``),
5. re-submit the *identical* sweep: the job completes from the result
   cache with zero engine work, and the second result set is
   bit-identical to the first (``canonical_dict`` equality), and
6. close the loop with ``/results/reproduce`` on one cached row.

The same conversation works from the shell against
``python -m repro.service serve``::

    curl -s localhost:8750/health
    curl -s -X POST localhost:8750/sweep -d '{"scenario": "passwords", ...}'

Run with::

    PYTHONPATH=src python examples/service_quickstart.py
"""

from __future__ import annotations

import json
import shutil
import tempfile
import threading
import time
import urllib.request
from typing import Any, Dict, Optional, Tuple

from repro.experiments import ResultSet
from repro.io.experiments_io import resultset_from_dict
from repro.service import ServiceConfig, create_app
from repro.service.cli import build_server

SWEEP = {
    "scenario": "passwords",
    "grid": {"single_sign_on": [False, True], "password_vault": [False, True]},
    "n_receivers": 2_000,
    "seed": 11,
    "task": "recall-passwords",
    "name": "password-burden-service",
    "detach": True,  # force the async job path even at this small scale
}


def request(
    base: str, method: str, path: str, body: Optional[Dict[str, Any]] = None
) -> Tuple[int, Dict[str, Any]]:
    """One JSON round trip over real loopback HTTP."""
    data = None if body is None else json.dumps(body).encode("utf-8")
    req = urllib.request.Request(base + path, data=data, method=method)
    try:
        with urllib.request.urlopen(req) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:  # 4xx/5xx still carry JSON
        return error.code, json.loads(error.read())


def poll_job(base: str, job_id: str) -> Dict[str, Any]:
    """Poll the job until its ledger reaches a terminal state."""
    seen = 0
    while True:
        _, payload = request(base, "GET", f"/jobs/{job_id}/events")
        for event in payload["events"][seen:]:
            extras = {
                key: value
                for key, value in event.items()
                if key not in ("event", "seq", "time", "job_id", "request")
            }
            print(f"  seq {event['seq']:>2}  {event['event']:<9} {extras}")
        seen = len(payload["events"])
        _, status = request(base, "GET", f"/jobs/{job_id}")
        if status["job"]["status"] in ("done", "failed"):
            return status["job"]
        time.sleep(0.05)


def fetch_resultset(base: str, job_id: str) -> ResultSet:
    _, payload = request(base, "GET", f"/results/{job_id}")
    return resultset_from_dict(payload["resultset"])


def main() -> None:
    data_dir = tempfile.mkdtemp(prefix="repro-service-quickstart-")
    app = create_app(ServiceConfig(data_dir=data_dir, inline_threshold=4_000))
    server = build_server(app, "127.0.0.1", 0)
    base = f"http://127.0.0.1:{server.server_port}"
    threading.Thread(target=server.serve_forever, daemon=True).start()
    try:
        _, health = request(base, "GET", "/health")
        print(
            f"serving {health['scenarios']} scenarios at {base} "
            f"(version {health['version']})"
        )

        # The grid is validated before anything runs; a bad knob would
        # come back as a structured 422 naming the parameter.
        status, _ = request(
            base,
            "POST",
            "/scenarios/passwords/validate",
            {"params": {"single_sign_on": True}},
        )
        assert status == 200

        status, submitted = request(base, "POST", "/sweep", dict(SWEEP))
        assert status == 202, submitted
        job_id = submitted["job"]["job_id"]
        print(f"\nsubmitted {job_id} (cost {submitted['cost']:,} receiver-rounds):")
        job = poll_job(base, job_id)
        assert job["status"] == "done", job

        first = fetch_resultset(base, job_id)
        print(f"\nmerged {len(first.rows)} rows from {job_id}:")
        print(first.to_markdown(["protection_rate", "capability_failure_rate"]))

        # Content addressing: any row is fetchable by its variant hash
        # alone, no job id needed.
        point = first.rows[0].variant_hash
        _, by_hash = request(base, "GET", f"/results/by-hash/{point}")
        assert by_hash["rows"][0]["variant_hash"] == point
        print(f"\nrow {point} fetched by content hash alone")

        # The same sweep again: the worker finds every row in the result
        # cache and commits the job without touching the engine, and the
        # bytes are exactly the first computation's.
        status, resubmitted = request(base, "POST", "/sweep", dict(SWEEP))
        assert status == 202
        second_job = poll_job(base, resubmitted["job"]["job_id"])
        assert second_job["summary"]["from_cache"] is True
        second = fetch_resultset(base, resubmitted["job"]["job_id"])
        assert second.canonical_dict() == first.canonical_dict()
        _, health = request(base, "GET", "/health")
        print(
            f"\nidentical re-submission served from cache bit-identically "
            f"(cache: {health['cache']})"
        )

        # Reproduce one cached row from its recorded provenance.
        _, verdict = request(
            base, "POST", "/results/reproduce", {"variant_hash": point}
        )
        assert verdict["match"] is True
        print(
            f"row {point} reproduced bit-identically "
            f"(rng_mode={verdict['rng_mode']})"
        )
    finally:
        server.shutdown()
        server.server_close()
        app.state.close()
        shutil.rmtree(data_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
