#!/usr/bin/env python3
"""Design-time use: iterating a custom system through the process.

The framework is meant to be used *before* a system ships: identify the
human tasks, automate what can be automated, find the failure modes, fix
the design, and iterate.  This example models a small "encrypted file
sharing" product with three human tasks, runs the process on the first
design, applies two of the suggested design changes, and shows the
improvement — including serializing the improved system to JSON so it can
be versioned alongside the code.

Run with::

    python examples/custom_system_design.py
"""

from __future__ import annotations

import dataclasses
import json

from repro.core import (
    Communication,
    CommunicationType,
    Environment,
    HazardFrequency,
    HazardProfile,
    HazardSeverity,
    HumanInTheLoopFramework,
    HumanSecurityTask,
    SecureSystem,
    StimulusKind,
    TaskDesign,
)
from repro.core.receiver import Capabilities
from repro.io.json_io import system_to_dict
from repro.mitigations import recommend_for_system


def first_design() -> SecureSystem:
    """The initial design, sketched quickly and full of human traps."""
    hazard = HazardProfile(
        severity=HazardSeverity.HIGH,
        frequency=HazardFrequency.OCCASIONAL,
        user_action_necessity=0.8,
        description="Confidential files shared with the wrong people or unencrypted.",
    )
    share_dialog_notice = Communication(
        name="share-dialog-notice",
        comm_type=CommunicationType.NOTICE,
        activeness=0.2,
        hazard=hazard,
        clarity=0.4,
        includes_instructions=False,
        length_words=80,
        conspicuity=0.3,
    )
    passphrase_policy = Communication(
        name="passphrase-policy",
        comm_type=CommunicationType.POLICY,
        activeness=0.2,
        hazard=hazard,
        clarity=0.6,
        includes_instructions=True,
        length_words=200,
    )
    office = Environment(description="busy office").add_stimulus(
        StimulusKind.PRIMARY_TASK, 0.6, "getting the file to a colleague"
    )

    choose_recipients = HumanSecurityTask(
        name="choose-recipients",
        description="Select exactly the intended recipients before sharing.",
        communication=share_dialog_notice,
        task_design=TaskDesign(
            steps=4, controls_discoverable=0.5, feedback_quality=0.3, controls_distinguishable=0.5
        ),
        environment=office,
        desired_action="Share with exactly the intended recipients.",
        failure_consequence="Confidential file exposed to unintended recipients.",
    )
    remember_passphrase = HumanSecurityTask(
        name="remember-passphrase",
        description="Remember the long encryption passphrase without writing it down.",
        communication=passphrase_policy,
        capability_requirements=Capabilities(
            knowledge_to_act=0.2, cognitive_skill=0.3, physical_skill=0.1, memory_capacity=0.85,
            has_required_software=False, has_required_device=False,
        ),
        environment=office,
        desired_action="Recall the passphrase when opening shared files.",
        failure_consequence="Passphrases written on sticky notes or reused.",
    )
    verify_encryption = HumanSecurityTask(
        name="verify-encryption-before-sending",
        description="Check the (subtle) lock badge that shows the file is actually encrypted.",
        communication=Communication(
            name="encryption-badge",
            comm_type=CommunicationType.STATUS_INDICATOR,
            activeness=0.1,
            hazard=hazard,
            clarity=0.3,
            conspicuity=0.2,
            habituation_exposures=20,
        ),
        environment=office,
        desired_action="Only send once the encrypted badge is shown.",
        failure_consequence="Files sent unencrypted without anyone noticing.",
    )
    return SecureSystem(
        name="encrypted-file-sharing-v1",
        description="First design of the encrypted file-sharing workflow.",
        tasks=[choose_recipients, remember_passphrase, verify_encryption],
    )


def improved_design(original: SecureSystem) -> SecureSystem:
    """Apply the top design changes the analysis suggests.

    * Recipient choice gets a clearer dialog with feedback (closes the gulfs).
    * The passphrase burden is removed by an OS-keychain integration
      (automating the memory task away).
    * The encryption badge becomes an active blocker when a file would be
      sent unencrypted.
    """
    choose = original.task_named("choose-recipients")
    improved_choose = dataclasses.replace(
        choose,
        task_design=TaskDesign(
            steps=3, controls_discoverable=0.9, feedback_quality=0.85,
            controls_distinguishable=0.85, guidance_through_steps=True,
        ),
        communication=dataclasses.replace(
            choose.communication, clarity=0.8, includes_instructions=True, conspicuity=0.7
        ),
    )

    remember = original.task_named("remember-passphrase")
    improved_remember = dataclasses.replace(
        remember,
        name="unlock-keychain",
        description="Unlock the OS keychain that now stores the passphrase.",
        capability_requirements=Capabilities(
            knowledge_to_act=0.2, cognitive_skill=0.2, physical_skill=0.1, memory_capacity=0.3,
            has_required_software=False, has_required_device=False,
        ),
    )

    verify = original.task_named("verify-encryption-before-sending")
    improved_verify = dataclasses.replace(
        verify,
        communication=dataclasses.replace(
            verify.communication,
            name="unencrypted-send-blocker",
            comm_type=CommunicationType.WARNING,
            activeness=1.0,
            clarity=0.8,
            includes_instructions=True,
            conspicuity=0.9,
            habituation_exposures=0,
        ),
    )

    return SecureSystem(
        name="encrypted-file-sharing-v2",
        description="Second design after one pass of the process.",
        tasks=[improved_choose, improved_remember, improved_verify],
    )


def main() -> None:
    framework = HumanInTheLoopFramework()

    v1 = first_design()
    v1_analysis = framework.analyze_system(v1)
    print(f"v1 mean task reliability: {v1_analysis.mean_success_probability():.0%}")
    print(f"v1 weakest task: {v1_analysis.weakest_task()}")
    recommendations = recommend_for_system(v1)
    print("v1 top recommendations per task:")
    for line in recommendations.summary_lines():
        print(f"  {line}")
    print()

    v2 = improved_design(v1)
    v2_analysis = framework.analyze_system(v2)
    print(f"v2 mean task reliability: {v2_analysis.mean_success_probability():.0%}")
    print(
        "Improvement: "
        f"{v2_analysis.mean_success_probability() - v1_analysis.mean_success_probability():+.0%} "
        "mean reliability across the human tasks."
    )
    print()

    payload = json.dumps(system_to_dict(v2), indent=2, sort_keys=True)
    print(f"Serialized improved design: {len(payload)} bytes of JSON (first 200 shown)")
    print(payload[:200] + "...")


if __name__ == "__main__":
    main()
