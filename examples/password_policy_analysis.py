#!/usr/bin/env python3
"""Case study 3.2: organizational password policies, end to end.

Reproduces the paper's password-policy case study through the declarative
experiment API:

* analyses the three human tasks a password policy creates (create,
  recall, refrain from sharing) with the framework,
* sweeps the mitigation variants the case study discusses (no expiry,
  rationale training, single sign-on, a password vault) as parameter
  points of the registered ``passwords`` scenario, and
* prints the per-variant mitigation ranking for the recall task, which
  should put memory-offloading mitigations (SSO, vault) above
  training-only ones.

Run with::

    PYTHONPATH=src python examples/password_policy_analysis.py
"""

from __future__ import annotations

from repro.core import HumanInTheLoopFramework
from repro.experiments import Experiment, ResultSet, password_case_study_variants
from repro.mitigations import catalog_for
from repro.systems import get_scenario, passwords


def run_framework_analysis() -> None:
    framework = HumanInTheLoopFramework(mitigation_catalog=catalog_for("passwords"))
    system = passwords.build_system()

    print("=" * 72)
    print("Framework analysis of the baseline policy's three human tasks")
    print("=" * 72)
    analysis = framework.analyze_system(system)
    for task_name, task_analysis in sorted(analysis.task_analyses.items()):
        weakest = task_analysis.weakest_component()
        print(
            f"  {task_name}: success ≈ {task_analysis.success_probability:.0%}, "
            f"weakest component = {weakest.title}"
        )
    print()


def run_policy_sweep() -> ResultSet:
    print("=" * 72)
    print("Simulated recall-task compliance across policy variants")
    print("=" * 72)
    experiment = Experiment(
        name="password-policy-variants",
        variants=password_case_study_variants(),
        n_receivers=500,
        seed=3200,
        task="recall-passwords",
        seed_strategy="shared",
    )
    results = experiment.run()
    print(
        results.to_markdown(
            [
                "protection_rate",
                "heed_rate",
                "intention_failure_rate",
                "capability_failure_rate",
            ]
        )
    )
    print()
    baseline = results.row("baseline")
    print(
        "Binding failure under the baseline policy: "
        f"capability (memorability) failures hit {baseline.metric('capability_failure_rate'):.0%} of "
        f"employees vs {baseline.metric('intention_failure_rate'):.0%} who simply choose not to comply — "
        "exactly the capability failure the case study calls the most critical one."
    )
    print()
    return results


def run_mitigation_ranking(results: ResultSet) -> None:
    print("=" * 72)
    print("Mitigation ranking for the recall task, per policy variant")
    print("=" * 72)
    labels = ("baseline", "single-sign-on")
    recommendations = results.recommendations(domain="passwords", labels=labels)
    for label in labels:
        row = results.row(label)
        variant = get_scenario("passwords").bind(**dict(row.params))
        recall_name = variant.task("recall-passwords").name
        plan = recommendations[label].tasks[recall_name].mitigation_plan
        print(f"  {label}:")
        for rank, (mitigation, score) in enumerate(plan.recommendations[:3], start=1):
            print(
                f"    {rank}. {mitigation.name:38s} priority={score:5.2f} "
                f"({mitigation.strategy.value})"
            )
    print()


def main() -> None:
    run_framework_analysis()
    results = run_policy_sweep()
    run_mitigation_ranking(results)


if __name__ == "__main__":
    main()
