#!/usr/bin/env python3
"""Case study 3.2: organizational password policies, end to end.

Reproduces the paper's password-policy case study:

* analyses the three human tasks a password policy creates (create,
  recall, refrain from sharing) with the framework,
* sweeps the mitigation variants the case study discusses (no expiry,
  rationale training, single sign-on, a password vault) through the
  simulation substrate, and
* prints the mitigation ranking for the recall task, which should put
  memory-offloading mitigations (SSO, vault) above training-only ones.

Run with::

    python examples/password_policy_analysis.py
"""

from __future__ import annotations

from repro.core import HumanInTheLoopFramework
from repro.mitigations import catalog_for, recommend_for_system
from repro.simulation import HumanLoopSimulator, SimulationConfig
from repro.simulation.metrics import render_comparison_markdown
from repro.systems import passwords


def run_framework_analysis() -> None:
    framework = HumanInTheLoopFramework(mitigation_catalog=catalog_for("passwords"))
    system = passwords.build_system()

    print("=" * 72)
    print("Framework analysis of the baseline policy's three human tasks")
    print("=" * 72)
    analysis = framework.analyze_system(system)
    for task_name, task_analysis in sorted(analysis.task_analyses.items()):
        weakest = task_analysis.weakest_component()
        print(
            f"  {task_name}: success ≈ {task_analysis.success_probability:.0%}, "
            f"weakest component = {weakest.title}"
        )
    print()

    print("=" * 72)
    print("Mitigation ranking for the recall task")
    print("=" * 72)
    recommendations = recommend_for_system(system, domain="passwords")
    recall_name = passwords.recall_task(passwords.baseline_policy()).name
    plan = recommendations.tasks[recall_name].mitigation_plan
    for rank, (mitigation, score) in enumerate(plan.recommendations[:6], start=1):
        print(f"  {rank}. {mitigation.name:38s} priority={score:5.2f} ({mitigation.strategy.value})")
    print()


def run_policy_sweep() -> None:
    print("=" * 72)
    print("Simulated recall-task compliance across policy variants")
    print("=" * 72)
    results = {}
    for name, policy in passwords.policy_variants().items():
        simulator = HumanLoopSimulator(
            SimulationConfig(n_receivers=500, seed=3200, calibration=passwords.calibration(policy))
        )
        results[name] = simulator.simulate_task(
            passwords.recall_task(policy), passwords.population(policy)
        )
    print(render_comparison_markdown(results))
    print()
    baseline = results["baseline"]
    print(
        "Binding failure under the baseline policy: "
        f"capability (memorability) failures hit {baseline.capability_failure_rate():.0%} of "
        f"employees vs {baseline.intention_failure_rate():.0%} who simply choose not to comply — "
        "exactly the capability failure the case study calls the most critical one."
    )


def main() -> None:
    run_framework_analysis()
    run_policy_sweep()


if __name__ == "__main__":
    main()
