#!/usr/bin/env python3
"""A scheduled worker fleet surviving a mid-shard crash.

``examples/sharded_sweep.py`` runs the shards by hand; this example
hands the same kind of grid to the :mod:`repro.cluster` scheduler and
lets the machinery do what a human operator would have to: launch
workers, watch their heartbeats, notice a death, and retry.

1. declare a password-policy grid and the experiment,
2. run it serially once — the correctness anchor every scheduled run
   must match bit for bit (modulo wall-clock telemetry),
3. schedule the grid as 4 shards over a 2-process
   :class:`LocalProcessFleet`, with a deterministic
   :class:`FaultInjector` armed to hard-kill the shard-1 worker right
   after its first committed row (leaving the torn shard-log line a
   real crash would leave),
4. watch the scheduler detect the death, requeue the shard with
   backoff, and rerun it — the retry dedups against the append-only
   checkpoint, so nothing is recomputed twice — and
5. read the structured scheduler event log back: every queued /
   started / worker-failed / requeued / completed / merged transition
   is one committed JSONL record in the checkpoint directory.

The same story is drillable from the shell::

    python -m repro.cluster run --scenario passwords \\
        --grid '{"single_sign_on": [false, true]}' \\
        --task recall-passwords --shards 4 --workers 2 \\
        --checkpoint-dir ckpt --inject-kill-after-rows 1 --inject-shards 1
    python -m repro.cluster events --checkpoint-dir ckpt

Run with::

    PYTHONPATH=src python examples/cluster_sweep.py
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

from repro.cluster import (
    FAULT_KILL_EXIT_CODE,
    FaultInjector,
    LocalProcessFleet,
    ShardScheduler,
    read_scheduler_events,
)
from repro.experiments import Experiment, SweepSpec

SHARD_COUNT = 4
MAX_WORKERS = 2


def build_experiment() -> Experiment:
    sweep = SweepSpec(
        scenario="passwords",
        grid={
            "distinct_accounts": [4, 8],
            "single_sign_on": [False, True],
            "password_vault": [False, True],
        },
    )
    return Experiment.from_sweep(
        "password-burden-cluster",
        sweep,
        n_receivers=400,
        seed=11,
        task="recall-passwords",
    )


def main() -> None:
    experiment = build_experiment()
    serial = experiment.run()
    print(
        f"grid: {len(experiment.variants)} variants -> {SHARD_COUNT} shards "
        f"on a {MAX_WORKERS}-process fleet"
    )

    checkpoint_dir = Path(tempfile.mkdtemp(prefix="repro-cluster-sweep-"))
    try:
        # Arm the injector: the worker running shard 1 (first attempt
        # only) dies right after committing its first row, tearing the
        # shard log's final line exactly the way a real crash would.
        scheduler = ShardScheduler(
            experiment,
            shard_count=SHARD_COUNT,
            checkpoint_dir=str(checkpoint_dir),
            transport=LocalProcessFleet(max_workers=MAX_WORKERS),
            backoff_base=0.1,
            backoff_cap=1.0,
            fault_injector=FaultInjector(shards=(1,), kill_after_rows=1),
        )
        merged = scheduler.run()

        (death,) = read_scheduler_events(checkpoint_dir, kind="worker-failed")
        assert death["exit_code"] == FAULT_KILL_EXIT_CODE
        (retry,) = read_scheduler_events(checkpoint_dir, kind="requeued")
        print(
            f"shard {death['shard']} attempt {death['attempt']} was killed "
            f"mid-shard (exit {death['exit_code']}); requeued with "
            f"{retry['delay']:.3f}s backoff and completed on attempt "
            f"{retry['attempt']}"
        )

        # The crash changed nothing about the science: the merged set is
        # bit-identical to the serial run modulo wall-clock telemetry.
        assert merged.canonical_dict() == serial.canonical_dict()
        print("merged fleet results are bit-identical to the serial run")
        print()
        print(merged.to_markdown(["protection_rate", "capability_failure_rate"]))

        # The event log is the run's flight recorder: replay the shard's
        # whole life from queued to completed.
        print()
        print("scheduler event log for the killed shard:")
        for event in read_scheduler_events(checkpoint_dir):
            if event.get("shard") == death["shard"]:
                extras = {
                    key: value
                    for key, value in event.items()
                    if key not in ("event", "seq", "time", "shard")
                }
                print(f"  seq {event['seq']:>3}  {event['event']:<13} {extras}")
    finally:
        shutil.rmtree(checkpoint_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
