#!/usr/bin/env python3
"""Quickstart for the declarative experiment API: a 3-parameter grid.

Sweeps a password-policy grid — accounts to remember × expiry × single
sign-on — through ``repro.experiments`` end to end:

1. declare the grid (``SweepSpec``) over the registered ``passwords``
   scenario's typed parameters,
2. run every variant through the batch engine with per-variant seeded
   RNG streams (``Experiment.run``; pass
   ``backend=ProcessBackend(max_workers=N)`` to fan the grid out over
   processes, or see ``examples/sharded_sweep.py`` for splitting it
   across hosts),
3. compare variants and pick the best one from the ``ResultSet``, and
4. export the results — with full parameter/seed provenance — via
   ``repro.io``, then reproduce one row exactly from that provenance.

Run with::

    PYTHONPATH=src python examples/sweep_quickstart.py
"""

from __future__ import annotations

import os
import tempfile

from repro.experiments import Experiment, SweepSpec, reproduce_row
from repro.io import load_resultset


def main() -> None:
    sweep = SweepSpec(
        scenario="passwords",
        grid={
            "distinct_accounts": [4, 8, 16],
            "expiry_days": [None, 90],
            "single_sign_on": [False, True],
        },
    )
    experiment = Experiment.from_sweep(
        "password-burden-quickstart",
        sweep,
        n_receivers=400,
        seed=7,
        task="recall-passwords",
    )
    print(f"grid: {sweep.size} variants over axes {list(sweep.grid)}")
    results = experiment.run()

    print()
    print(results.to_markdown(["protection_rate", "capability_failure_rate"]))

    best = results.best("protection_rate")
    print()
    print(
        f"best variant: {best.variant} — protection {best.metric('protection_rate'):.1%} "
        f"(seed {best.seed}, mode {best.mode})"
    )

    # Export with provenance, read it back, and reproduce one row exactly.
    with tempfile.TemporaryDirectory(prefix="repro-sweep-") as directory:
        path = os.path.join(directory, "results.json")
        results.save(path)
        reloaded = load_resultset(path)
    rerun = reproduce_row(reloaded.row(best.variant))
    assert rerun.protection_rate() == best.metric("protection_rate")
    print(
        f"exported {len(reloaded)} rows (JSON round-trip); best row reproduced exactly"
    )


if __name__ == "__main__":
    main()
