#!/usr/bin/env python3
"""Habituation and the active–passive spectrum.

Section 2.1 warns that "frequent, active warnings about relatively low-risk
hazards ... may lead users to start ignoring not only these warnings, but
also similar warnings about more severe hazards", and Section 2.3.1 that
"over time users may ignore security indicators that they observe
frequently".  This example traces notice probability over repeated
exposures for three communications — the SSL lock icon, the passive IE
anti-phishing warning, and the blocking Firefox warning — and prints the
§2.1 design advice for a few contrasting hazard profiles.

Run with::

    python examples/habituation_study.py
"""

from __future__ import annotations

from repro.core import (
    HazardFrequency,
    HazardProfile,
    HazardSeverity,
    advise,
)
from repro.simulation.habituation import simulate_exposure_series
from repro.simulation.rng import SimulationRng
from repro.systems import antiphishing, ssl_indicators


def trace_habituation() -> None:
    print("Notice probability over repeated exposures")
    print("-" * 60)
    communications = {
        "ssl-lock-icon (passive indicator)": ssl_indicators.lock_icon_indicator(
            habituation_exposures=0
        ),
        "ie-passive warning": antiphishing.ie_passive_warning(),
        "firefox blocking warning": antiphishing.firefox_warning(),
    }
    checkpoints = (0, 5, 10, 20, 29)
    header = "exposure".ljust(34) + "".join(f"{index:>8d}" for index in checkpoints)
    print(header)
    for label, communication in communications.items():
        series = simulate_exposure_series(communication, exposures=30, rng=SimulationRng(7))
        row = label.ljust(34)
        for index in checkpoints:
            row += f"{series[index].notice_probability:8.2f}"
        print(row)
    print()


def show_design_advice() -> None:
    print("§2.1 design advice for contrasting hazards")
    print("-" * 60)
    hazards = {
        "phishing page (severe, occasional, actionable)": HazardProfile(
            severity=HazardSeverity.HIGH,
            frequency=HazardFrequency.OCCASIONAL,
            user_action_necessity=0.9,
        ),
        "mixed-content resource (low risk, constant)": HazardProfile(
            severity=HazardSeverity.LOW,
            frequency=HazardFrequency.CONSTANT,
            user_action_necessity=0.3,
        ),
        "unpatched kernel (critical, user cannot act)": HazardProfile(
            severity=HazardSeverity.CRITICAL,
            frequency=HazardFrequency.FREQUENT,
            user_action_necessity=0.1,
        ),
    }
    for label, hazard in hazards.items():
        advice = advise(hazard)
        print(f"{label}:")
        print(
            f"    -> {advice.recommended_type.value}, "
            f"{advice.recommended_activeness.value}, "
            f"habituation risk {advice.habituation_risk:.2f}"
        )
    print()


def main() -> None:
    trace_habituation()
    show_design_advice()


if __name__ == "__main__":
    main()
