#!/usr/bin/env python3
"""Habituation and the active–passive spectrum.

Section 2.1 warns that "frequent, active warnings about relatively low-risk
hazards ... may lead users to start ignoring not only these warnings, but
also similar warnings about more severe hazards", and Section 2.3.1 that
"over time users may ignore security indicators that they observe
frequently".  This example shows the decay three ways:

* a single-receiver exposure trace (:func:`simulate_exposure_series`) for
  three communications — the SSL lock icon, the passive IE anti-phishing
  warning, and the blocking Firefox warning,
* the same study at population scale through the multi-round engine
  (``scenario.simulate(..., rounds=N, recovery_rate=r)``), whose
  per-round :class:`~repro.simulation.metrics.RoundTally` series shows the
  notice rate eroding encounter after encounter — and recovering when
  exposure-free gaps are long enough,
* delivery-keyed vs **outcome-coupled** exposure accrual: §2.3.1 says
  habituation is driven by what receivers *do* at each encounter, so
  weighting dismissed encounters heavier than heeded ones
  (``dismiss_weight`` / ``heed_weight``) steepens or flattens the decay
  curve relative to the delivery-only rule, and
* the §2.1 design advice for a few contrasting hazard profiles.

Run with::

    python examples/habituation_study.py
"""

from __future__ import annotations

from repro.core import (
    HazardFrequency,
    HazardProfile,
    HazardSeverity,
    advise,
)
from repro.simulation.habituation import simulate_exposure_series
from repro.simulation.rng import SimulationRng
from repro.systems import antiphishing, get_scenario, ssl_indicators


def trace_habituation() -> None:
    print("Notice probability over repeated exposures")
    print("-" * 60)
    communications = {
        "ssl-lock-icon (passive indicator)": ssl_indicators.lock_icon_indicator(
            habituation_exposures=0
        ),
        "ie-passive warning": antiphishing.ie_passive_warning(),
        "firefox blocking warning": antiphishing.firefox_warning(),
    }
    checkpoints = (0, 5, 10, 20, 29)
    header = "exposure".ljust(34) + "".join(f"{index:>8d}" for index in checkpoints)
    print(header)
    for label, communication in communications.items():
        series = simulate_exposure_series(communication, exposures=30, rng=SimulationRng(7))
        row = label.ljust(34)
        for index in checkpoints:
            row += f"{series[index].notice_probability:8.2f}"
        print(row)
    print()


def trace_engine_rounds(
    n_receivers: int = 4_000, rounds: int = 8, seed: int = 7
) -> None:
    """The same decay study at population scale, through the engine.

    Each receiver faces ``rounds`` consecutive hazard encounters; the
    engine carries their habituation exposure state between rounds, so the
    per-round notice rate traces the population-level decay curve (and the
    effect of recovery during exposure-free gaps).
    """
    print(f"Population notice rate over {rounds} hazard encounters (engine rounds)")
    print("-" * 60)
    scenario = get_scenario("antiphishing")
    studies = {
        "ie-passive, no recovery": ("heed-ie_passive-warning", 0.0),
        "ie-passive, recovery 0.5": ("heed-ie_passive-warning", 0.5),
        "firefox blocking, no recovery": ("heed-firefox-warning", 0.0),
    }
    header = "scenario".ljust(34) + "".join(f" round{index}" for index in range(rounds))
    print(header)
    for label, (task, recovery_rate) in studies.items():
        result = scenario.simulate(
            n_receivers,
            seed=seed,
            task=task,
            rounds=rounds,
            recovery_rate=recovery_rate,
        )
        row = label.ljust(34)
        for notice_rate in result.round_metric("notice_rate"):
            row += f"{notice_rate:7.2f}"
        print(row)
    print()


def trace_outcome_coupled_decay(
    n_receivers: int = 4_000, rounds: int = 8, seed: int = 7
) -> None:
    """Delivery-keyed vs outcome-coupled decay, for the passive IE warning.

    The delivery-only rule (unit weights) habituates every receiver the
    warning reached by one exposure per encounter.  Coupling the accrual
    to realized outcomes — dismissed encounters weigh more, heeded ones
    less — steepens the decay for a warning most users click through, and
    the per-round funnel shows exactly where the extra encounters die
    (attention-switch survival).
    """
    print(f"Delivery-keyed vs outcome-coupled decay ({rounds} encounters)")
    print("-" * 60)
    scenario = get_scenario("antiphishing")
    studies = {
        "delivery-only (1.0 / 1.0)": dict(dismiss_weight=1.0, heed_weight=1.0),
        "dismissal-heavy (3.0 / 0.5)": dict(dismiss_weight=3.0, heed_weight=0.5),
        "heed-only (0.0 / 1.0)": dict(dismiss_weight=0.0, heed_weight=1.0),
    }
    header = "accrual rule".ljust(34) + "".join(f" round{index}" for index in range(rounds))
    print(header)
    results = {}
    for label, weights in studies.items():
        result = scenario.simulate(
            n_receivers,
            seed=seed,
            task="heed-ie_passive-warning",
            rounds=rounds,
            recovery_rate=0.0,
            **weights,
        )
        results[label] = result
        row = label.ljust(34)
        for notice_rate in result.round_metric("notice_rate"):
            row += f"{notice_rate:7.2f}"
        print(row)
    print()
    print("Per-stage funnel, final round (dismissal-heavy accrual)")
    final = results["dismissal-heavy (3.0 / 0.5)"].round_funnels[-1]
    for funnel_row in final.survival():
        print(
            f"    {funnel_row['checkpoint']:<22} entered {funnel_row['entry_rate']:6.1%}  "
            f"survived {funnel_row['survival_rate']:6.1%}  "
            f"cond. failure {funnel_row['conditional_failure_rate']:6.1%}"
        )
    print()


def show_design_advice() -> None:
    print("§2.1 design advice for contrasting hazards")
    print("-" * 60)
    hazards = {
        "phishing page (severe, occasional, actionable)": HazardProfile(
            severity=HazardSeverity.HIGH,
            frequency=HazardFrequency.OCCASIONAL,
            user_action_necessity=0.9,
        ),
        "mixed-content resource (low risk, constant)": HazardProfile(
            severity=HazardSeverity.LOW,
            frequency=HazardFrequency.CONSTANT,
            user_action_necessity=0.3,
        ),
        "unpatched kernel (critical, user cannot act)": HazardProfile(
            severity=HazardSeverity.CRITICAL,
            frequency=HazardFrequency.FREQUENT,
            user_action_necessity=0.1,
        ),
    }
    for label, hazard in hazards.items():
        advice = advise(hazard)
        print(f"{label}:")
        print(
            f"    -> {advice.recommended_type.value}, "
            f"{advice.recommended_activeness.value}, "
            f"habituation risk {advice.habituation_risk:.2f}"
        )
    print()


def main() -> None:
    trace_habituation()
    trace_engine_rounds()
    trace_outcome_coupled_decay()
    show_design_advice()


if __name__ == "__main__":
    main()
