#!/usr/bin/env python3
"""Case study 3.1: anti-phishing browser warnings, end to end.

Reproduces the paper's anti-phishing case study:

* applies the human threat identification and mitigation process to the
  browser anti-phishing system (task identification, automation analysis,
  failure identification, mitigation planning), and
* simulates a general web population encountering a phishing page under
  each warning design (Firefox active, IE active, IE passive, no warning)
  to regenerate the active-vs-passive effectiveness gap the case study is
  built on.

Run with::

    python examples/antiphishing_analysis.py
"""

from __future__ import annotations

from repro.core import HumanInTheLoopFramework
from repro.core.report import render_process_result
from repro.mitigations import catalog_for, recommend_for_system
from repro.simulation import HumanLoopSimulator, SimulationConfig
from repro.simulation.metrics import render_comparison_markdown
from repro.systems import antiphishing
from repro.systems.antiphishing import WarningVariant


def run_framework_analysis() -> None:
    framework = HumanInTheLoopFramework(mitigation_catalog=catalog_for("antiphishing"))
    system = antiphishing.build_system()

    print("=" * 72)
    print("Human threat identification and mitigation process")
    print("=" * 72)
    result = framework.run_process(system, max_passes=2)
    print(render_process_result(result))

    print("=" * 72)
    print("Per-task recommendations")
    print("=" * 72)
    recommendations = recommend_for_system(system, domain="antiphishing")
    for line in recommendations.summary_lines():
        print(f"  {line}")
    print()


def run_simulation() -> None:
    print("=" * 72)
    print("Simulated protection rates (general web population)")
    print("=" * 72)
    simulator = HumanLoopSimulator(
        SimulationConfig(n_receivers=600, seed=20080124, calibration=antiphishing.calibration())
    )
    population = antiphishing.population()
    results = {
        variant.value: simulator.simulate_task(antiphishing.task_for(variant), population)
        for variant in WarningVariant
    }
    print(render_comparison_markdown(results))
    print()
    passive = results[WarningVariant.IE_PASSIVE.value]
    firefox = results[WarningVariant.FIREFOX.value]
    print(
        f"Active (Firefox) protection {firefox.protection_rate():.0%} vs passive (IE) "
        f"{passive.protection_rate():.0%}: the case study's conclusion that the passive "
        "warning should be replaced with an active one falls out of the simulation."
    )


def main() -> None:
    run_framework_analysis()
    run_simulation()


if __name__ == "__main__":
    main()
