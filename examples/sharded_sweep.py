#!/usr/bin/env python3
"""A parameter grid split across two (simulated) hosts and merged.

Cluster-scale sweeps don't run in one process: each host runs one
deterministic shard of the grid and the audited shard logs are merged
afterwards.  This example walks the whole workflow on one machine:

1. declare a password-policy grid (``SweepSpec``) and the experiment,
2. "host A" and "host B" each run one ``ShardBackend`` invocation —
   disjoint, strided halves of the grid — checkpointing rows append-only
   to JSONL shard files in a shared directory (``repro.io.shards``),
3. merge the two partial ``ResultSet``s with ``ResultSet.merge`` and
   verify the reassembly is **bit-identical** to a ``SerialBackend`` run
   (per-variant seeds derive from the experiment seed and variant index,
   never from which host ran the point), and
4. simulate a failure — delete host B's shard file — and let
   ``Experiment.resume`` complete the run from the surviving checkpoint
   without recomputing host A's finished rows.

Run with::

    PYTHONPATH=src python examples/sharded_sweep.py
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

from repro.experiments import (
    Experiment,
    ResultSet,
    SerialBackend,
    ShardBackend,
    SweepSpec,
)
from repro.io import load_checkpoint, shard_filename

N_HOSTS = 2


def canonical(resultset) -> dict:
    """The result-set dict modulo wall-clock telemetry.

    Every simulated outcome is bit-identical however the grid was
    sharded; the ``perf:`` timing metrics record machine time and are the
    one per-row datum two identical runs legitimately disagree on —
    ``ResultSet.canonical_dict`` (keyed on ``WALL_CLOCK_METRICS``) is
    the one filter every bit-identity check routes through.
    """
    return resultset.canonical_dict()


def build_experiment() -> Experiment:
    sweep = SweepSpec(
        scenario="passwords",
        grid={
            "distinct_accounts": [4, 8, 16],
            "single_sign_on": [False, True],
        },
    )
    return Experiment.from_sweep(
        "password-burden-sharded",
        sweep,
        n_receivers=400,
        seed=7,
        task="recall-passwords",
    )


def main() -> None:
    experiment = build_experiment()
    print(
        f"grid: {len(experiment.variants)} variants, "
        f"split across {N_HOSTS} simulated hosts"
    )

    checkpoint_dir = Path(tempfile.mkdtemp(prefix="repro-sharded-sweep-"))
    try:
        # Each "host" is one ShardBackend invocation; in a real cluster
        # these run on different machines against a shared (or later
        # collected) checkpoint directory.
        shards = []
        for host in range(N_HOSTS):
            backend = ShardBackend(
                shard_index=host,
                shard_count=N_HOSTS,
                checkpoint_dir=str(checkpoint_dir),
            )
            partial = experiment.run(backend=backend)
            labels = ", ".join(row.variant for row in partial)
            print(f"host {'AB'[host]} ran shard {host}/{N_HOSTS}: {labels}")
            shards.append(partial)

        files = [path.name for path, _, _ in load_checkpoint(checkpoint_dir)]
        print(f"append-only shard logs: {files}")

        merged = ResultSet.merge(*shards)
        serial = experiment.run(backend=SerialBackend())
        assert canonical(merged) == canonical(serial)
        print("merged shards are bit-identical to the serial run")
        print()
        print(merged.to_markdown(["protection_rate", "capability_failure_rate"]))

        # Host B's machine dies and its shard log is lost: resume re-runs
        # only the missing rows, serving host A's from the checkpoint.
        (checkpoint_dir / shard_filename(1, N_HOSTS)).unlink()
        resumed = experiment.resume(str(checkpoint_dir))
        assert canonical(resumed) == canonical(serial)
        print()
        print(
            "after losing host B's shard log, resume recomputed only its "
            f"{len(shards[1])} rows and reassembled the full {len(resumed)}-row set"
        )
    finally:
        shutil.rmtree(checkpoint_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
