#!/usr/bin/env python3
"""Quickstart: analyse a custom human-in-the-loop security task.

This example walks the shortest useful path through the library:

1. describe a security communication, the environment it is delivered in,
   and the human task it is supposed to trigger;
2. run the framework analysis (the Table-1 checklist, automated);
3. ask for mitigation suggestions; and
4. print the same kind of per-component report the paper's case studies use.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import (
    Communication,
    CommunicationType,
    Environment,
    HazardFrequency,
    HazardProfile,
    HazardSeverity,
    HumanInTheLoopFramework,
    HumanSecurityTask,
    SecureSystem,
    StimulusKind,
    TaskDesign,
    novice_receiver,
    typical_receiver,
)


def build_task() -> HumanSecurityTask:
    """An OS update prompt: a warning the user can postpone indefinitely."""
    hazard = HazardProfile(
        severity=HazardSeverity.HIGH,
        frequency=HazardFrequency.FREQUENT,
        user_action_necessity=0.8,
        description="Running with known-vulnerable, unpatched software.",
    )
    update_prompt = Communication(
        name="os-update-prompt",
        comm_type=CommunicationType.WARNING,
        activeness=0.55,
        hazard=hazard,
        clarity=0.6,
        includes_instructions=True,
        explains_risk=False,
        length_words=45,
        conspicuity=0.6,
        allows_override=True,
        habituation_exposures=12,
        description="The periodic 'updates are available, restart now?' prompt.",
    )
    environment = Environment(description="User mid-task on a work laptop")
    environment.add_stimulus(StimulusKind.PRIMARY_TASK, 0.7, "the document they are editing")

    return HumanSecurityTask(
        name="apply-os-update",
        description="Decide to apply the pending security update rather than postponing it.",
        communication=update_prompt,
        task_design=TaskDesign(steps=2, controls_discoverable=0.85, feedback_quality=0.7),
        environment=environment,
        receivers=[typical_receiver(), novice_receiver()],
        desired_action="Accept the update and restart promptly.",
        failure_consequence="The machine keeps running a known-vulnerable OS build.",
    )


def main() -> None:
    framework = HumanInTheLoopFramework()
    task = build_task()

    # 1. Ask the §2.1 design guidance what kind of communication fits the hazard.
    advice = framework.advise_communication(task.communication.hazard)
    print("Design guidance for this hazard:")
    print(advice.summary())
    print()

    # 2. Run the framework analysis (failure identification).
    analysis = framework.analyze_task(task)
    print(framework.report_task(analysis))
    print()

    # 3. Ask for mitigation suggestions ranked by the risk they address.
    plan = framework.suggest_mitigations(analysis.failures)
    print("Top mitigation suggestions:")
    for rank, mitigation in enumerate(plan.top(3), start=1):
        print(f"  {rank}. {mitigation.name} ({mitigation.strategy.value}): {mitigation.description}")
    print()

    # 4. Run the full four-step process over a one-task system.
    result = framework.run_process(SecureSystem(name="os-updates", tasks=[task]), max_passes=2)
    print(
        f"Process finished after {result.pass_count} pass(es); residual risk trajectory: "
        + " -> ".join(f"{risk:.2f}" for risk in result.risk_trajectory())
    )


if __name__ == "__main__":
    main()
